//! Per-service transport metrics, shared by [`crate::SimNetwork`] and
//! [`crate::ThreadedNetwork`].
//!
//! Both transports account every RPC to the same metric family, labeled
//! by destination [`ServiceId`]:
//!
//! * `rpc_calls_total{service=...}` — attempts, including failures,
//! * `rpc_local_calls_total{service=...}` — loopback (same-host) calls,
//! * `rpc_failed_calls_total{service=...}` — calls that returned an
//!   error (dead node, missing service, handler failure),
//! * `rpc_bytes_total{service=...}` — request + response wire bytes,
//! * `rpc_latency_nanos{service=...}` — round-trip latency histogram,
//!   measured as a delta on the transport's own clock (virtual under
//!   `SimNetwork`, so values are deterministic).
//!
//! Handles are resolved once at construction; the per-call path is a few
//! relaxed atomic adds with no locking.

use crate::network::ServiceId;
use kosha_obs::{Counter, Histogram, Obs};
use std::sync::Arc;

/// Metric handles for one destination service.
pub(crate) struct SvcMetrics {
    pub calls: Arc<Counter>,
    pub local: Arc<Counter>,
    pub failed: Arc<Counter>,
    pub bytes: Arc<Counter>,
    pub latency: Arc<Histogram>,
}

/// All per-service handles plus the owning [`Obs`] domain.
pub(crate) struct NetMetrics {
    obs: Arc<Obs>,
    per_service: Vec<SvcMetrics>,
}

impl NetMetrics {
    pub fn new() -> Self {
        let obs = Obs::new();
        let per_service = ServiceId::ALL
            .iter()
            .map(|s| {
                let l = s.name();
                SvcMetrics {
                    calls: obs
                        .registry
                        .counter(&format!("rpc_calls_total{{service=\"{l}\"}}")),
                    local: obs
                        .registry
                        .counter(&format!("rpc_local_calls_total{{service=\"{l}\"}}")),
                    failed: obs
                        .registry
                        .counter(&format!("rpc_failed_calls_total{{service=\"{l}\"}}")),
                    bytes: obs
                        .registry
                        .counter(&format!("rpc_bytes_total{{service=\"{l}\"}}")),
                    latency: obs
                        .registry
                        .histogram(&format!("rpc_latency_nanos{{service=\"{l}\"}}")),
                }
            })
            .collect();
        NetMetrics { obs, per_service }
    }

    /// The observability domain (for exposition and tests).
    pub fn obs(&self) -> Arc<Obs> {
        Arc::clone(&self.obs)
    }

    /// Handles for one service.
    pub fn svc(&self, s: ServiceId) -> &SvcMetrics {
        &self.per_service[s.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_service_is_preregistered() {
        let m = NetMetrics::new();
        let names = m.obs().registry.names();
        for s in ServiceId::ALL {
            assert!(
                names
                    .iter()
                    .any(|n| n.starts_with("rpc_calls_total") && n.contains(s.name())),
                "missing calls metric for {s:?} in {names:?}"
            );
        }
        m.svc(ServiceId::Nfs).calls.inc();
        assert_eq!(
            m.obs()
                .registry
                .counter("rpc_calls_total{service=\"nfs\"}")
                .get(),
            1
        );
    }
}
