//! Deterministic simulated transport with a calibrated latency model.
//!
//! This is the reproduction's stand-in for the paper's testbed: "Each node
//! has a 2.0 GHz Intel P4 with 512 MB RAM and a 40 GB 7200 RPM \[disk\], and
//! runs FreeBSD 4.6. The nodes are connected via a 100 Mb/s Ethernet
//! switch" (Section 6.1). The [`LatencyModel`] charges, per RPC:
//!
//! * a fixed per-message network latency (switch + stack traversal),
//! * a per-byte cost derived from link bandwidth (both directions),
//! * a fixed per-request server handling cost (RPC dispatch CPU), and
//! * **local-bypass**: a call from a node to itself skips the network
//!   charges and pays only a loopback cost. This asymmetry is what makes
//!   Kosha's overhead grow with the fraction `(N-1)/N` of remotely stored
//!   files, the effect Section 6.1.2 analyzes.
//!
//! Latency is charged to the shared [`VirtualClock`] along the caller's
//! (blocking, serial) call path; nested RPCs issued by a handler accumulate
//! naturally. Failure injection: a call to a failed node charges the
//! configured timeout and returns [`RpcError::Unreachable`].
//!
//! **Event-driven core.** The clock no longer steps inline: every modeled
//! cost becomes a waypoint event on a binary-heap
//! [`Scheduler`](crate::sched::Scheduler) keyed by `(deadline, seq)`, and
//! the transport advances time by draining due events in O(log n) each —
//! message-delivery legs, pump ticks, and timer wakeups all interleave in
//! deadline order. Determinism is preserved because ties break on the
//! insertion sequence number. Two driving styles coexist:
//!
//! * Legacy [`SimNetwork::run_pumps`] fires every registered pump once at
//!   the current instant (heap-routed, registration order via `seq`),
//!   leaving the clock untouched — existing benches are byte-identical.
//! * [`SimNetwork::run_until`] arms each pump as a *recurring* timer at
//!   its registered interval and advances the clock to a target instant,
//!   firing everything due on the way. This is the driver for
//!   million-event churn/scale experiments; one-shot wakeups can be
//!   planted with [`SimNetwork::schedule_after`].

use crate::clock::{Clock, SimTime, VirtualClock};
use crate::metrics::NetMetrics;
use crate::network::{
    Network, NodeAddr, PumpHook, RpcError, RpcRequest, RpcResponse, ServiceMux, TraceHeader,
};
use crate::sched::Scheduler;
use kosha_obs::{trace, Obs};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Cost parameters for the simulated cluster.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// One-way network latency per message between distinct hosts. The
    /// paper's Section 6.1.2 uses "hc is under 1 ms \[...\] typical within an
    /// organization"; a switched 100 Mb/s LAN RTT is ~0.2–0.4 ms.
    pub hop_latency: Duration,
    /// Additional one-way latency per unit of coordinate-space distance
    /// between two hosts (see [`SimNetwork::set_coord`]). Zero (the
    /// default) keeps the network topology-flat; non-zero values model a
    /// multi-switch or multi-site LAN, the setting where Pastry's
    /// proximity-aware routing pays off.
    pub per_distance_unit: Duration,
    /// Link bandwidth in bytes/second (100 Mb/s ≈ 12.5 MB/s).
    pub bandwidth_bps: u64,
    /// Fixed server-side cost to dispatch and handle one RPC.
    pub server_op_cost: Duration,
    /// Cost of a loopback call (same host): syscall + local RPC dispatch.
    pub loopback_cost: Duration,
    /// Time a caller waits before declaring a dead node unreachable.
    pub timeout: Duration,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            hop_latency: Duration::from_micros(150),
            per_distance_unit: Duration::ZERO,
            bandwidth_bps: 12_500_000,
            server_op_cost: Duration::from_micros(60),
            loopback_cost: Duration::from_micros(25),
            timeout: Duration::from_millis(800),
        }
    }
}

impl LatencyModel {
    /// A zero-cost model, useful for logic-only tests.
    #[must_use]
    pub fn zero() -> Self {
        LatencyModel {
            hop_latency: Duration::ZERO,
            per_distance_unit: Duration::ZERO,
            bandwidth_bps: u64::MAX,
            server_op_cost: Duration::ZERO,
            loopback_cost: Duration::ZERO,
            timeout: Duration::ZERO,
        }
    }

    fn transfer_time(&self, bytes: usize) -> Duration {
        if self.bandwidth_bps == u64::MAX {
            return Duration::ZERO;
        }
        Duration::from_nanos((bytes as u64).saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }

    /// Total modeled round-trip cost of a remote call with the given
    /// request/response sizes.
    #[must_use]
    pub fn remote_rtt(&self, req_bytes: usize, resp_bytes: usize) -> Duration {
        self.hop_latency * 2
            + self.transfer_time(req_bytes)
            + self.transfer_time(resp_bytes)
            + self.server_op_cost
    }
}

/// Aggregate traffic counters, exposed for experiments and ablations.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Total RPCs attempted (including those that failed).
    pub calls: AtomicU64,
    /// RPCs that were node-local (loopback).
    pub local_calls: AtomicU64,
    /// RPCs to dead nodes (charged the timeout).
    pub failed_calls: AtomicU64,
    /// Total bytes across the wire (requests + responses, remote only).
    pub bytes: AtomicU64,
}

impl NetStats {
    /// Snapshot `(calls, local, failed, bytes)`.
    #[must_use]
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.calls.load(Ordering::Relaxed),
            self.local_calls.load(Ordering::Relaxed),
            self.failed_calls.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
        )
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.local_calls.store(0, Ordering::Relaxed);
        self.failed_calls.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }
}

struct Registered {
    mux: Arc<ServiceMux>,
}

/// Payload of one scheduler event.
enum SimEvent {
    /// A pure clock waypoint: the end of a modeled message-delivery leg
    /// or failure timeout. Dispatching it only moves the clock.
    Wakeup,
    /// One `run_pumps()`-style tick of pump-table entry `i` (one-shot).
    PumpOnce(usize),
    /// A recurring tick of pump-table entry `i`, armed by
    /// [`SimNetwork::run_until`]; reschedules itself at the entry's
    /// interval while its hook is alive.
    PumpTick(usize),
    /// A one-shot timer callback planted via
    /// [`SimNetwork::schedule_after`].
    Timer(Box<dyn FnOnce() + Send>),
}

/// One registered pump hook plus its requested cadence.
struct PumpEntry {
    hook: Weak<dyn PumpHook>,
    interval: Duration,
    /// True while a recurring [`SimEvent::PumpTick`] for this entry is
    /// in the heap (armed by `run_until`, disarmed when the hook dies).
    armed: bool,
}

/// Deterministic in-process transport. See the module docs.
///
/// ```
/// use kosha_rpc::{LatencyModel, Network, NodeAddr, ServiceMux, SimNetwork};
/// use std::sync::Arc;
/// let net = SimNetwork::new(LatencyModel::default());
/// net.attach(NodeAddr(1), Arc::new(ServiceMux::new()));
/// assert!(net.is_up(NodeAddr(1)));
/// net.fail_node(NodeAddr(1));
/// assert!(!net.is_up(NodeAddr(1)));
/// net.recover_node(NodeAddr(1));
/// assert!(net.is_up(NodeAddr(1)));
/// ```
pub struct SimNetwork {
    clock: Arc<VirtualClock>,
    model: LatencyModel,
    nodes: RwLock<HashMap<NodeAddr, Registered>>,
    down: RwLock<HashSet<NodeAddr>>,
    /// Optional coordinates per host for distance-dependent latency.
    coords: RwLock<HashMap<NodeAddr, (f64, f64)>>,
    stats: NetStats,
    metrics: NetMetrics,
    /// The event heap driving all clock movement (see the module docs).
    sched: Scheduler<SimEvent>,
    /// Pumps registered via [`Network::schedule_pump`]. The simulation
    /// never drives them spontaneously (that would break determinism);
    /// callers either drain them explicitly with
    /// [`SimNetwork::run_pumps`] or arm them as recurring scheduler
    /// timers via [`SimNetwork::run_until`]. Entries are never removed
    /// (indices are baked into queued events); dead hooks simply stop
    /// upgrading.
    pumps: Mutex<Vec<PumpEntry>>,
}

impl SimNetwork {
    /// New network with the given latency model.
    #[must_use]
    pub fn new(model: LatencyModel) -> Arc<Self> {
        let metrics = NetMetrics::new();
        let sched = Scheduler::observed(&metrics.obs());
        let net = Arc::new(SimNetwork {
            clock: VirtualClock::new(),
            model,
            nodes: RwLock::new(HashMap::new()),
            down: RwLock::new(HashSet::new()),
            coords: RwLock::new(HashMap::new()),
            stats: NetStats::default(),
            metrics,
            sched,
            pumps: Mutex::new(Vec::new()),
        });
        #[cfg(feature = "lockcheck")]
        crate::lockcheck_gate::install_cycle_hook(std::sync::Arc::downgrade(&net.metrics.obs()), {
            let clock = Arc::clone(&net.clock);
            move || clock.now().0
        });
        net
    }

    /// New network with zero latency (logic-only tests).
    #[must_use]
    pub fn new_zero_latency() -> Arc<Self> {
        Self::new(LatencyModel::zero())
    }

    /// Attaches a node's service mux at `addr`. Re-attaching replaces the
    /// previous registration (a reinstalled machine).
    pub fn attach(&self, addr: NodeAddr, mux: Arc<ServiceMux>) {
        self.nodes.write().insert(addr, Registered { mux });
        self.down.write().remove(&addr);
    }

    /// Detaches a node entirely (permanent removal). The departed peer's
    /// latency gauge, recorder series, crash marker, and coordinates are
    /// pruned with it, so churn does not grow any per-peer state without
    /// bound.
    pub fn detach(&self, addr: NodeAddr) {
        self.nodes.write().remove(&addr);
        self.down.write().remove(&addr);
        self.coords.write().remove(&addr);
        self.metrics.prune_peer(addr);
    }

    /// Marks a node as crashed: calls to it time out. Its state is
    /// preserved (a crashed machine's disk persists), matching the
    /// availability-trace semantics of Section 6.3.
    pub fn fail_node(&self, addr: NodeAddr) {
        self.down.write().insert(addr);
    }

    /// Revives a previously failed node with its state intact.
    pub fn recover_node(&self, addr: NodeAddr) {
        self.down.write().remove(&addr);
    }

    /// Places a host at coordinates `(x, y)` in the latency space. Pairs
    /// without coordinates (or with `per_distance_unit == 0`) pay only
    /// the flat [`LatencyModel::hop_latency`].
    pub fn set_coord(&self, addr: NodeAddr, x: f64, y: f64) {
        self.coords.write().insert(addr, (x, y));
    }

    /// One-way latency between two hosts under the model + topology.
    #[must_use]
    pub fn link_latency(&self, a: NodeAddr, b: NodeAddr) -> Duration {
        if self.model.per_distance_unit.is_zero() {
            return self.model.hop_latency;
        }
        let coords = self.coords.read();
        match (coords.get(&a), coords.get(&b)) {
            (Some(&(ax, ay)), Some(&(bx, by))) => {
                let d = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
                self.model.hop_latency + self.model.per_distance_unit.mul_f64(d)
            }
            _ => self.model.hop_latency,
        }
    }

    /// Traffic counters.
    #[must_use]
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Transport-level observability: per-service call/byte counters and
    /// latency histograms (`rpc_*{service=...}`), timestamped on the
    /// virtual clock so expositions are deterministic.
    #[must_use]
    pub fn obs(&self) -> Arc<Obs> {
        self.metrics.obs()
    }

    /// The latency model in force.
    #[must_use]
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// The virtual clock (typed, for `reset`).
    #[must_use]
    pub fn virtual_clock(&self) -> Arc<VirtualClock> {
        Arc::clone(&self.clock)
    }

    /// All currently attached addresses (test/diagnostic helper).
    #[must_use]
    pub fn attached(&self) -> Vec<NodeAddr> {
        let mut addrs: Vec<NodeAddr> = self.nodes.read().keys().copied().collect();
        // Address order, not hash order: this is a deterministic
        // transport and callers iterate the result.
        addrs.sort();
        addrs
    }

    /// Runs every registered [`PumpHook`] once, at a deterministic point
    /// chosen by the caller — the simulation's replacement for the
    /// background pump worker a real-time transport runs. Each live hook
    /// is scheduled as a one-shot event at the *current* instant and the
    /// heap is drained, so firing order is `(deadline, seq)` — all
    /// deadlines equal "now", ties broken by registration sequence — and
    /// the clock does not move. Returns how many hooks ran.
    pub fn run_pumps(&self) -> usize {
        let now = self.clock.now().0;
        let live: Vec<usize> = {
            let pumps = self.pumps.lock();
            pumps
                .iter()
                .enumerate()
                .filter(|(_, p)| p.hook.strong_count() > 0)
                .map(|(i, _)| i)
                .collect()
        };
        for &i in &live {
            self.sched.schedule_at(now, now, SimEvent::PumpOnce(i));
        }
        self.dispatch_until(now);
        // One flight-recorder tick for the transport's own domain, at
        // the (deterministic) virtual time the pumps settled on. Node
        // domains tick themselves via their sampler hooks above.
        let obs = self.metrics.obs();
        obs.export_self_gauges();
        obs.recorder.sample_all(self.clock.now().0);
        live.len()
    }

    /// Advances virtual time to `target`, dispatching every due event in
    /// `(deadline, seq)` order along the way. Registered pumps are armed
    /// as *recurring* timers at their [`Network::schedule_pump`] interval
    /// (first tick one interval from now), so a long `run_until` fires
    /// them repeatedly at their cadence — the event-driven idle loop a
    /// real deployment's background workers provide. Once armed, a pump
    /// also fires when ordinary calls push the clock past its deadline,
    /// which is exactly the interleaving a real transport exhibits.
    pub fn run_until(&self, target: SimTime) {
        let now = self.clock.now().0;
        let to_arm: Vec<(usize, u64)> = {
            let mut pumps = self.pumps.lock();
            let mut arm = Vec::new();
            for (i, p) in pumps.iter_mut().enumerate() {
                if !p.armed && !p.interval.is_zero() && p.hook.strong_count() > 0 {
                    p.armed = true;
                    arm.push((i, now.saturating_add(p.interval.as_nanos() as u64)));
                }
            }
            arm
        };
        for (i, deadline) in to_arm {
            self.sched.schedule_at(deadline, now, SimEvent::PumpTick(i));
        }
        self.dispatch_until(target.0);
    }

    /// [`SimNetwork::run_until`], phrased as a span from the current
    /// instant.
    pub fn run_for(&self, d: Duration) {
        self.run_until(self.clock.now().plus(d));
    }

    /// Plants a one-shot timer `after` from now. It fires (in deadline
    /// order, interleaved with deliveries and pump ticks) during
    /// whichever [`SimNetwork::run_until`] or RPC leg first pushes the
    /// clock past its deadline.
    pub fn schedule_after(&self, after: Duration, f: impl FnOnce() + Send + 'static) {
        let now = self.clock.now().0;
        self.sched.schedule_at(
            now.saturating_add(after.as_nanos() as u64),
            now,
            SimEvent::Timer(Box::new(f)),
        );
    }

    /// Advances the clock by `d` through the event heap: schedules a
    /// waypoint at `now + d` and drains everything due before it. This
    /// is the modeled-cost primitive every RPC leg charges through.
    fn step(&self, d: Duration) {
        let now = self.clock.now().0;
        let target = now.saturating_add(d.as_nanos() as u64);
        self.sched.schedule_at(target, now, SimEvent::Wakeup);
        self.dispatch_until(target);
    }

    /// Pops and dispatches every event with `deadline <= target`, moving
    /// the clock to each event's deadline (never backwards), then to
    /// `target`. Re-entrant: handlers fired from events issue nested
    /// calls that recurse into this loop; the heap lock is released
    /// around every dispatch.
    fn dispatch_until(&self, target: u64) {
        while let Some((deadline, ev)) = self.sched.pop_due(target) {
            if deadline > self.clock.now().0 {
                self.clock.set(SimTime(deadline));
            }
            match ev {
                SimEvent::Wakeup => {}
                SimEvent::PumpOnce(i) => self.fire_pump(i, None),
                SimEvent::PumpTick(i) => self.fire_pump(i, Some(deadline)),
                SimEvent::Timer(f) => f(),
            }
        }
        if target > self.clock.now().0 {
            self.clock.set(SimTime(target));
        }
    }

    /// Fires pump-table entry `i` if its hook is still alive. For
    /// recurring ticks (`rearm_from = Some(deadline)`) the next tick is
    /// scheduled one interval after the *deadline* (stable cadence even
    /// when the pump itself advances the clock); a dead hook disarms the
    /// entry instead.
    fn fire_pump(&self, i: usize, rearm_from: Option<u64>) {
        let (hook, interval) = {
            let pumps = self.pumps.lock();
            let Some(p) = pumps.get(i) else { return };
            (p.hook.clone(), p.interval)
        };
        let alive = match hook.upgrade() {
            Some(h) => {
                h.pump();
                true
            }
            None => false,
        };
        let Some(deadline) = rearm_from else { return };
        if alive {
            let next = deadline.saturating_add(interval.as_nanos() as u64);
            self.sched
                .schedule_at(next, self.clock.now().0, SimEvent::PumpTick(i));
            // A recurring tick also refreshes the transport-domain
            // recorder so long idle runs produce a time-series.
            let obs = self.metrics.obs();
            obs.export_self_gauges();
            obs.recorder.sample_all(self.clock.now().0);
        } else if let Some(p) = self.pumps.lock().get_mut(i) {
            p.armed = false;
        }
    }
}

impl SimNetwork {
    /// The untraced call path (also the body of every traced call).
    fn call_inner(
        &self,
        from: NodeAddr,
        to: NodeAddr,
        req: RpcRequest,
    ) -> Result<RpcResponse, RpcError> {
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let svc = self.metrics.svc(req.service);
        svc.calls.inc();
        let _inflight = crate::metrics::InflightGuard::enter(&svc.inflight);
        let start = self.clock.now();

        let is_down = self.down.read().contains(&to);
        let mux = if is_down {
            None
        } else {
            self.nodes.read().get(&to).map(|r| Arc::clone(&r.mux))
        };

        let Some(mux) = mux else {
            self.stats.failed_calls.fetch_add(1, Ordering::Relaxed);
            self.step(self.model.timeout);
            svc.failed.inc();
            let elapsed = self.clock.now().since_nanos(start);
            svc.latency.record(elapsed);
            // A full timeout feeds the EWMA too: dead or flaky targets
            // look slow, steering replica reads elsewhere.
            self.metrics.note_peer_latency(from, to, elapsed);
            return Err(RpcError::Unreachable(to));
        };

        if from == to {
            self.stats.local_calls.fetch_add(1, Ordering::Relaxed);
            svc.local.inc();
            self.step(self.model.loopback_cost);
            let result =
                trace::with_context(req.trace.map(TraceHeader::ctx), || mux.dispatch(from, &req));
            if result.is_err() {
                svc.failed.inc();
            }
            let elapsed = self.clock.now().since_nanos(start);
            svc.latency.record(elapsed);
            self.metrics.note_peer_latency(from, to, elapsed);
            return result;
        }

        let req_bytes = req.wire_size();
        let link = self.link_latency(from, to);
        // Charge request-direction costs before the handler runs so that
        // nested calls see a clock that already includes delivery. The
        // delivery leg is a heap waypoint: timers and armed pump ticks
        // that come due before it fire first, in deadline order.
        self.step(link + self.model.transfer_time(req_bytes) + self.model.server_op_cost);
        // Install the request's trace header as the handler's ambient
        // context: on this same-thread transport the caller's context is
        // usually already in scope, but stamping from the header keeps
        // the semantics identical to a cross-thread transport.
        let result =
            trace::with_context(req.trace.map(TraceHeader::ctx), || mux.dispatch(from, &req));
        let resp_bytes = match &result {
            Ok(r) => r.wire_size(),
            Err(_) => 16,
        };
        self.step(link + self.model.transfer_time(resp_bytes));
        self.stats
            .bytes
            .fetch_add((req_bytes + resp_bytes) as u64, Ordering::Relaxed);
        svc.bytes.add((req_bytes + resp_bytes) as u64);
        if result.is_err() {
            svc.failed.inc();
        }
        let elapsed = self.clock.now().since_nanos(start);
        svc.latency.record(elapsed);
        self.metrics.note_peer_latency(from, to, elapsed);
        result
    }
}

impl Network for SimNetwork {
    fn call(
        &self,
        from: NodeAddr,
        to: NodeAddr,
        mut req: RpcRequest,
    ) -> Result<RpcResponse, RpcError> {
        // Gating `call` covers `call_many` too: the sim fans out by
        // invoking `call` per entry on this same thread.
        #[cfg(feature = "lockcheck")]
        crate::lockcheck_gate::rpc_gate(
            &self.metrics.obs(),
            self.clock.now().0,
            from,
            "SimNetwork::call",
        );
        // When a trace is active on the calling thread, wrap the RPC in
        // a client span (timed on the virtual clock, so it covers the
        // full modeled round trip) and stamp the child context into the
        // wire header. With no active trace this records nothing and
        // leaves the frame in the legacy layout.
        let span_name = req.service.rpc_span_name();
        self.metrics.tracer().child_with(
            || span_name.to_string(),
            from.0,
            || self.clock.now().0,
            |ctx| {
                req.trace = ctx.map(TraceHeader::from_ctx);
                self.call_inner(from, to, req)
            },
        )
    }

    /// Concurrent fan-out under virtual time: every call in the batch is
    /// executed from the same start instant and the clock ends at
    /// `start + max(per-call elapsed)`, so overlapping RPCs cost the
    /// slowest one rather than the sum. Each call still runs serially
    /// under the hood (handlers and their nested RPCs accumulate their
    /// own charges from the rewound start), which keeps the simulation
    /// deterministic: results and final time are independent of any
    /// real-world interleaving.
    fn call_many(
        &self,
        from: NodeAddr,
        batch: Vec<(NodeAddr, RpcRequest)>,
    ) -> Vec<Result<RpcResponse, RpcError>> {
        self.metrics.fanout_batch.record(batch.len() as u64);
        if batch.len() <= 1 {
            return batch
                .into_iter()
                .map(|(to, req)| self.call(from, to, req))
                .collect();
        }
        // Each entry's client span starts from the rewound `t0`, so a
        // traced fan-out records its per-target RPCs as overlapping
        // parallel siblings — exactly what the critical-path analyzer
        // charges as `max`, matching the clock accounting below.
        let t0 = self.clock.now();
        let mut max_elapsed = 0u64;
        let mut out = Vec::with_capacity(batch.len());
        for (to, req) in batch {
            self.clock.set(t0);
            let result = self.call(from, to, req);
            max_elapsed = max_elapsed.max(self.clock.now().since_nanos(t0));
            out.push(result);
        }
        self.clock.set(SimTime(t0.0.saturating_add(max_elapsed)));
        out
    }

    fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock) as Arc<dyn Clock>
    }

    fn is_up(&self, addr: NodeAddr) -> bool {
        !self.down.read().contains(&addr) && self.nodes.read().contains_key(&addr)
    }

    /// Records the hook (and its interval, the recurring-timer cadence
    /// [`SimNetwork::run_until`] arms) and returns `false`: under
    /// virtual time the *caller* decides when pumping happens, keeping
    /// runs deterministic.
    fn schedule_pump(&self, hook: Weak<dyn PumpHook>, interval: Duration) -> bool {
        self.pumps.lock().push(PumpEntry {
            hook,
            interval,
            armed: false,
        });
        false
    }

    fn peer_latency_nanos(&self, from: NodeAddr, to: NodeAddr) -> Option<u64> {
        self.metrics.peer_latency(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{RpcHandler, ServiceId};
    use bytes::Bytes;

    struct Echo;
    impl RpcHandler for Echo {
        fn handle(&self, _from: NodeAddr, body: &[u8]) -> Result<RpcResponse, RpcError> {
            Ok(RpcResponse {
                body: Bytes::copy_from_slice(body),
            })
        }
    }

    fn net_with_echo(model: LatencyModel) -> Arc<SimNetwork> {
        let net = SimNetwork::new(model);
        for a in [1, 2] {
            let mux = Arc::new(ServiceMux::new());
            mux.register(ServiceId::Nfs, Arc::new(Echo));
            net.attach(NodeAddr(a), mux);
        }
        net
    }

    #[test]
    fn detach_prunes_peer_latency_telemetry() {
        let net = net_with_echo(LatencyModel::default());
        // Generations of short-lived peers join, serve one call, leave.
        for gen in 0..40u64 {
            let addr = NodeAddr(100 + gen);
            let mux = Arc::new(ServiceMux::new());
            mux.register(ServiceId::Nfs, Arc::new(Echo));
            net.attach(addr, mux);
            net.call(NodeAddr(1), addr, RpcRequest::new(ServiceId::Nfs, &gen))
                .unwrap();
            net.obs().recorder.sample_all(gen);
            net.detach(addr);
            assert_eq!(net.peer_latency_nanos(NodeAddr(1), addr), None);
        }
        let obs = net.obs();
        let peers = |v: Vec<String>| {
            v.into_iter()
                .filter(|n| n.starts_with("rpc_peer_latency_ewma_nanos"))
                .count()
        };
        // Only the long-lived peer 2 may still hold a gauge (from the
        // net_with_echo warm-up path); every churned peer is gone from
        // registry and recorder alike, with nothing counted as dropped.
        assert!(peers(obs.registry.names()) <= 1, "registry grew");
        assert!(peers(obs.recorder.series_names()) <= 1, "recorder grew");
        assert_eq!(obs.recorder.dropped(), 0);
    }

    #[test]
    fn remote_call_echoes_and_charges_time() {
        let net = net_with_echo(LatencyModel::default());
        let req = RpcRequest::new(ServiceId::Nfs, &0xDEADu32);
        let resp = net.call(NodeAddr(1), NodeAddr(2), req).unwrap();
        assert_eq!(resp.decode::<u32>().unwrap(), 0xDEAD);
        let t = net.clock().now();
        // At least two hop latencies + server cost must have elapsed.
        assert!(t.as_duration() >= Duration::from_micros(2 * 150 + 60));
        let (calls, local, failed, bytes) = net.stats().snapshot();
        assert_eq!((calls, local, failed), (1, 0, 0));
        assert!(bytes > 0);
    }

    #[test]
    fn local_call_is_cheaper_than_remote() {
        let net = net_with_echo(LatencyModel::default());
        let req = RpcRequest::new(ServiceId::Nfs, &1u32);
        net.call(NodeAddr(1), NodeAddr(1), req.clone()).unwrap();
        let local_t = net.clock().now().as_duration();
        net.virtual_clock().reset();
        net.call(NodeAddr(1), NodeAddr(2), req).unwrap();
        let remote_t = net.clock().now().as_duration();
        assert!(local_t < remote_t, "{local_t:?} !< {remote_t:?}");
    }

    #[test]
    fn failed_node_times_out() {
        let net = net_with_echo(LatencyModel::default());
        net.fail_node(NodeAddr(2));
        assert!(!net.is_up(NodeAddr(2)));
        let req = RpcRequest::new(ServiceId::Nfs, &1u32);
        let before = net.clock().now();
        let err = net.call(NodeAddr(1), NodeAddr(2), req.clone()).unwrap_err();
        assert_eq!(err, RpcError::Unreachable(NodeAddr(2)));
        assert_eq!(
            net.clock().now().since(before),
            LatencyModel::default().timeout
        );
        // Recovery restores service with state intact.
        net.recover_node(NodeAddr(2));
        assert!(net.is_up(NodeAddr(2)));
        assert!(net.call(NodeAddr(1), NodeAddr(2), req).is_ok());
    }

    #[test]
    fn unknown_address_is_unreachable() {
        let net = net_with_echo(LatencyModel::zero());
        let req = RpcRequest::new(ServiceId::Nfs, &1u32);
        assert!(matches!(
            net.call(NodeAddr(1), NodeAddr(99), req),
            Err(RpcError::Unreachable(NodeAddr(99)))
        ));
    }

    #[test]
    fn call_many_charges_max_not_sum() {
        let net = net_with_echo(LatencyModel::default());
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Nfs, Arc::new(Echo));
        net.attach(NodeAddr(3), mux);
        let req = RpcRequest::new(ServiceId::Nfs, &7u32);
        net.call(NodeAddr(1), NodeAddr(2), req.clone()).unwrap();
        let one = net.clock().now().as_duration();
        net.virtual_clock().reset();
        let out = net.call_many(
            NodeAddr(1),
            vec![(NodeAddr(2), req.clone()), (NodeAddr(3), req.clone())],
        );
        assert!(out.iter().all(Result::is_ok));
        // Two identical overlapped calls elapse exactly one call's time.
        assert_eq!(net.clock().now().as_duration(), one);
    }

    #[test]
    fn call_many_overlaps_timeout_with_successes() {
        let net = net_with_echo(LatencyModel::default());
        net.fail_node(NodeAddr(2));
        let req = RpcRequest::new(ServiceId::Nfs, &7u32);
        let out = net.call_many(
            NodeAddr(1),
            vec![(NodeAddr(2), req.clone()), (NodeAddr(1), req.clone())],
        );
        assert!(matches!(out[0], Err(RpcError::Unreachable(NodeAddr(2)))));
        assert!(out[1].is_ok());
        // The dead node's timeout dominates; the loopback rides along.
        assert_eq!(
            net.clock().now().as_duration(),
            LatencyModel::default().timeout
        );
    }

    #[test]
    fn bigger_payloads_cost_more_time() {
        let net = net_with_echo(LatencyModel::default());
        let small = RpcRequest::new(ServiceId::Nfs, &vec![0u8; 16]);
        let big = RpcRequest::new(ServiceId::Nfs, &vec![0u8; 1 << 20]);
        net.call(NodeAddr(1), NodeAddr(2), small).unwrap();
        let t_small = net.clock().now().as_duration();
        net.virtual_clock().reset();
        net.call(NodeAddr(1), NodeAddr(2), big).unwrap();
        let t_big = net.clock().now().as_duration();
        assert!(t_big > t_small * 10);
    }
}
