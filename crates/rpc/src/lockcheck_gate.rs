//! Transport integration for the `lockcheck` runtime checker
//! (`parking_lot::lockcheck`, enabled by the `lockcheck` feature).
//!
//! Two duties, both compiled only under the feature:
//!
//! * [`rpc_gate`] — called at the entry of every blocking
//!   `Network::call`/`call_many`: asserts the calling thread's tracked
//!   held-lock set is empty. Holding a lock across a blocking RPC is
//!   the cross-function form of kosha-lint's L001 and the classic
//!   distributed-deadlock recipe (the handler on the far side may need
//!   that very lock). Violations are journaled as
//!   `lockcheck_held_rpc` events (stamped with the active trace id by
//!   the journal itself) before the policy panic fires.
//! * [`install_cycle_hook`] — registered at transport construction:
//!   forwards lock-order cycle reports from the global checker into
//!   this transport's journal as `lockcheck_cycle` events. The hook
//!   holds only a weak reference to the observability domain and
//!   deregisters itself once the transport is gone.

use std::sync::Weak;

use kosha_obs::Obs;
use parking_lot::lockcheck::{self, Violation};

use crate::network::NodeAddr;

/// Asserts the calling thread holds no tracked locks at a blocking RPC
/// boundary; journals and (per lockcheck policy) panics otherwise.
pub(crate) fn rpc_gate(obs: &Obs, t_nanos: u64, from: NodeAddr, context: &str) {
    let Some(held) = lockcheck::note_rpc_call(context) else {
        return;
    };
    let sites = held
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    obs.journal.record(
        t_nanos,
        from.0,
        "lockcheck_held_rpc",
        0,
        format!("{context}: locks held across blocking RPC: {sites}"),
    );
    if lockcheck::panic_on_violation() {
        panic!("lockcheck: blocking RPC ({context}) issued while holding {sites}");
    }
}

/// Forwards cycle (potential-deadlock) reports into the transport's
/// journal for as long as its observability domain is alive.
/// Held-across-RPC violations are journaled at the call site by
/// [`rpc_gate`] with node and service context, so the hook skips them.
pub(crate) fn install_cycle_hook(
    obs: Weak<Obs>,
    now_nanos: impl Fn() -> u64 + Send + Sync + 'static,
) {
    lockcheck::add_report_hook(move |v| {
        let Some(obs) = obs.upgrade() else {
            return false;
        };
        if let Violation::Cycle(c) = v {
            obs.journal
                .record(now_nanos(), 0, "lockcheck_cycle", 0, c.to_string());
        }
        true
    });
}
