//! Deterministic binary-heap event scheduler — the sim-side half of the
//! event-loop runtime.
//!
//! [`SimNetwork`](crate::SimNetwork) used to advance its virtual clock
//! inline, one `advance()` per modeled cost, which made every delivery a
//! straight-line charge and left no place for timers or pump ticks to
//! interleave. This module replaces that with a classic discrete-event
//! core: a min-heap of `(deadline, seq)`-keyed events popped in O(log n),
//! where `seq` is a monotonically increasing insertion counter that
//! breaks deadline ties. Two properties follow:
//!
//! * **Determinism** — pop order is a pure function of the insert
//!   sequence. Same seed, same inserts ⇒ byte-identical drain, which is
//!   what the CI determinism gates rely on.
//! * **Scale** — a 10k-node churn run schedules millions of message
//!   deliveries, pump ticks, and timer wakeups; each costs one heap push
//!   and one pop, so total work grows as `m log n` rather than the
//!   `m · n` of scanning per-node state per step.
//!
//! The scheduler is payload-generic so the transport can queue its own
//! event enum while property tests drive it with plain integers.
//!
//! Self-observability (the `observed` constructor): heap depth and its
//! high-water mark as gauges, a dispatched-event counter, and a
//! dispatch-latency histogram (virtual nanoseconds an event spent queued
//! before its deadline arrived), all registered as flight-recorder
//! sources so `kosha-top` shows runtime health.

use kosha_obs::{Counter, Gauge, Histogram, Obs};
use parking_lot::Mutex;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of heap-order comparisons, maintained by every
/// scheduler instance. The `sched` bench reads deltas of this to
/// demonstrate the O(log n) per-event claim empirically (comparisons
/// per event ≈ log₂ of heap depth) without depending on wall time,
/// which would break byte-identical bench output.
static HEAP_COMPARISONS: AtomicU64 = AtomicU64::new(0);

/// Total heap-order comparisons performed by all schedulers so far.
#[must_use]
pub fn heap_comparisons() -> u64 {
    HEAP_COMPARISONS.load(Ordering::Relaxed)
}

/// One queued event: fires at `deadline` (nanoseconds on the owning
/// clock), with `seq` breaking ties in insertion order.
struct Entry<T> {
    deadline: u64,
    seq: u64,
    /// Clock reading when the event was scheduled, for the
    /// dispatch-latency histogram.
    enqueued_at: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    /// Reversed `(deadline, seq)` order so `BinaryHeap` (a max-heap)
    /// pops the earliest deadline, earliest insertion first.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        HEAP_COMPARISONS.fetch_add(1, Ordering::Relaxed);
        (other.deadline, other.seq).cmp(&(self.deadline, self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

/// Metric handles for one scheduler (see the module docs).
struct SchedStats {
    depth: Arc<Gauge>,
    depth_hwm: Arc<Gauge>,
    events_total: Arc<Counter>,
    dispatch_latency: Arc<Histogram>,
}

/// Deterministic min-heap event scheduler. See the module docs.
///
/// ```
/// use kosha_rpc::sched::Scheduler;
/// let s: Scheduler<&str> = Scheduler::new();
/// s.schedule_at(20, 0, "late");
/// s.schedule_at(10, 0, "early");
/// s.schedule_at(10, 0, "early-tie");
/// assert_eq!(s.pop_due(25), Some((10, "early")));
/// assert_eq!(s.pop_due(25), Some((10, "early-tie")));
/// assert_eq!(s.pop_due(15), None); // "late" not due yet
/// assert_eq!(s.pop_due(20), Some((20, "late")));
/// ```
pub struct Scheduler<T> {
    heap: Mutex<BinaryHeap<Entry<T>>>,
    seq: AtomicU64,
    hwm: AtomicU64,
    stats: Option<SchedStats>,
}

impl<T> Default for Scheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Scheduler<T> {
    /// New unobserved scheduler (tests, tools).
    #[must_use]
    pub fn new() -> Self {
        Scheduler {
            heap: Mutex::new(BinaryHeap::new()),
            seq: AtomicU64::new(0),
            hwm: AtomicU64::new(0),
            stats: None,
        }
    }

    /// New scheduler publishing `kosha_sched_*` metrics into `obs` and
    /// arming them as flight-recorder sources.
    #[must_use]
    pub fn observed(obs: &Obs) -> Self {
        let depth = obs.registry.gauge("kosha_sched_heap_depth");
        let depth_hwm = obs.registry.gauge("kosha_sched_heap_depth_hwm");
        let events_total = obs.registry.counter("kosha_sched_events_total");
        let dispatch_latency = obs.registry.histogram("kosha_sched_dispatch_latency_nanos");
        obs.recorder.watch_gauge("kosha_sched_heap_depth", &depth);
        obs.recorder
            .watch_counter("kosha_sched_events_total", &events_total);
        obs.recorder.watch_histogram_pct(
            "kosha_sched_dispatch_latency_nanos:p99",
            &dispatch_latency,
            99,
        );
        Scheduler {
            heap: Mutex::new(BinaryHeap::new()),
            seq: AtomicU64::new(0),
            hwm: AtomicU64::new(0),
            stats: Some(SchedStats {
                depth,
                depth_hwm,
                events_total,
                dispatch_latency,
            }),
        }
    }

    /// Schedules `payload` to fire at absolute time `deadline` (nanos).
    /// `now` is the scheduling clock's current reading, recorded for the
    /// dispatch-latency histogram. Returns the event's tie-break
    /// sequence number.
    pub fn schedule_at(&self, deadline: u64, now: u64, payload: T) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let depth = {
            let mut heap = self.heap.lock();
            heap.push(Entry {
                deadline,
                seq,
                enqueued_at: now,
                payload,
            });
            heap.len() as u64
        };
        if depth > self.hwm.load(Ordering::Relaxed) {
            self.hwm.store(depth, Ordering::Relaxed);
        }
        if let Some(s) = &self.stats {
            s.depth.set(depth as i64);
            s.depth_hwm.set(self.hwm.load(Ordering::Relaxed) as i64);
        }
        seq
    }

    /// Pops the earliest event whose deadline is `<= by`, if any,
    /// returning `(deadline, payload)`. Dispatch metrics are charged
    /// here: the latency histogram records how long the event sat queued
    /// (deadline minus schedule time, in virtual nanos).
    pub fn pop_due(&self, by: u64) -> Option<(u64, T)> {
        let entry = {
            let mut heap = self.heap.lock();
            match heap.peek() {
                Some(e) if e.deadline <= by => heap.pop(),
                _ => None,
            }
        }?;
        if let Some(s) = &self.stats {
            s.depth.add(-1);
            s.events_total.inc();
            s.dispatch_latency
                .record(entry.deadline.saturating_sub(entry.enqueued_at));
        }
        Some((entry.deadline, entry.payload))
    }

    /// Deadline of the earliest queued event, if any.
    #[must_use]
    pub fn peek_deadline(&self) -> Option<u64> {
        self.heap.lock().peek().map(|e| e.deadline)
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.lock().len()
    }

    /// True when no events are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.lock().is_empty()
    }

    /// Deepest the heap has ever been (events queued simultaneously).
    #[must_use]
    pub fn high_water(&self) -> u64 {
        self.hwm.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_then_seq_order() {
        let s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(30, 0, 3);
        s.schedule_at(10, 0, 1);
        s.schedule_at(20, 0, 2);
        s.schedule_at(10, 0, 11); // same deadline, later insert
        let mut out = Vec::new();
        while let Some((dl, v)) = s.pop_due(u64::MAX) {
            out.push((dl, v));
        }
        assert_eq!(out, vec![(10, 1), (10, 11), (20, 2), (30, 3)]);
    }

    #[test]
    fn pop_due_respects_horizon() {
        let s: Scheduler<u8> = Scheduler::new();
        s.schedule_at(100, 0, 1);
        assert_eq!(s.pop_due(99), None);
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop_due(100), Some((100, 1)));
        assert!(s.is_empty());
    }

    #[test]
    fn observed_scheduler_publishes_metrics() {
        let obs = Obs::new();
        let s: Scheduler<u8> = Scheduler::observed(&obs);
        s.schedule_at(5, 0, 1);
        s.schedule_at(9, 2, 2);
        assert_eq!(obs.registry.gauge("kosha_sched_heap_depth").get(), 2);
        assert_eq!(s.high_water(), 2);
        s.pop_due(10);
        s.pop_due(10);
        assert_eq!(obs.registry.gauge("kosha_sched_heap_depth").get(), 0);
        assert_eq!(obs.registry.gauge("kosha_sched_heap_depth_hwm").get(), 2);
        assert_eq!(obs.registry.counter("kosha_sched_events_total").get(), 2);
        let h = obs.registry.histogram("kosha_sched_dispatch_latency_nanos");
        assert_eq!(h.count(), 2); // sojourns 5 and 7
                                  // Scheduler series are flight-recorder sources: one sampler
                                  // tick materializes them.
        obs.recorder.sample_all(11);
        assert!(obs
            .recorder
            .series_names()
            .iter()
            .any(|n| n == "kosha_sched_heap_depth"));
        assert_eq!(obs.recorder.last("kosha_sched_events_total"), Some((11, 2)));
    }

    #[test]
    fn comparisons_are_counted() {
        let before = heap_comparisons();
        let s: Scheduler<u32> = Scheduler::new();
        for i in 0..64 {
            s.schedule_at(i, 0, i as u32);
        }
        while s.pop_due(u64::MAX).is_some() {}
        assert!(heap_comparisons() > before);
    }
}
