//! RPC substrate for the Kosha reproduction.
//!
//! The original Kosha prototype ran on real FreeBSD machines: `koshad`
//! forwarded Sun RPC NFS calls over a 100 Mb/s LAN, and the Pastry port
//! exchanged overlay messages over sockets. This crate is the substitution
//! for that hardware testbed (see DESIGN.md §2): it provides
//!
//! * a compact hand-rolled binary **wire codec** ([`wire`]) so every message
//!   has a concrete byte size (the latency model charges per byte),
//! * a [`Network`] abstraction over which all node-to-node communication
//!   flows — nodes never share memory, matching the paper's
//!   message-passing deployment,
//! * [`SimNetwork`] — a deterministic in-process transport with a virtual
//!   clock, a calibrated latency model (per-hop RTT, per-byte bandwidth,
//!   per-operation server cost), failure injection, and an event-driven
//!   core (a binary-heap [`sched::Scheduler`] drives message delivery,
//!   pump ticks, and timer wakeups in O(log n) per event), used by all
//!   experiments, and
//! * [`ThreadedNetwork`] — a real concurrent transport (reactor + fixed
//!   worker pool, continuation-style [`Network::call_async`] dispatch)
//!   used by concurrency integration tests and scale smoke runs.
//!
//! Handlers are registered per [`ServiceId`] (Pastry, NFS, Kosha control),
//! mirroring the two-level messaging of the prototype: "node lookup and
//! other p2p messages are relayed using the p2p substrate \[...\] koshad uses
//! direct NFS RPCs to communicate with remote NFS servers" (Section 5.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
#[cfg(feature = "lockcheck")]
mod lockcheck_gate;
mod metrics;
pub mod network;
pub mod sched;
pub mod simnet;
pub mod threadnet;
pub mod wire;

pub use clock::{Clock, SimTime, VirtualClock, WallClock};
pub use network::{
    CallCompletion, Network, NodeAddr, PumpHook, RpcError, RpcHandler, RpcRequest, RpcResponse,
    ServiceId, ServiceMux, TraceHeader,
};
pub use sched::{heap_comparisons, Scheduler};
pub use simnet::{LatencyModel, NetStats, SimNetwork};
pub use threadnet::ThreadedNetwork;
pub use wire::{Reader, WireError, WireRead, WireWrite, Writer};
