//! Compact binary wire codec.
//!
//! Every RPC payload in the system is encoded to bytes before it crosses the
//! [`crate::Network`], for two reasons: (1) it enforces the paper's
//! share-nothing deployment model — a node cannot accidentally hand another
//! node a live reference — and (2) it gives every message a concrete size in
//! bytes, which the simulated latency model charges against link bandwidth.
//!
//! The format is deliberately simple and self-describing only by position
//! (like XDR, which Sun RPC/NFS used): fixed-width little-endian integers,
//! length-prefixed byte strings, `u8` tags for options and enums. All types
//! round-trip exactly; property tests in each crate verify this for their
//! message sets.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Error returned when decoding malformed or truncated bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// An enum/option tag byte had an unknown value.
    BadTag(u8),
    /// A length prefix exceeded the sanity limit or remaining buffer.
    BadLength(u64),
    /// A byte string that must be UTF-8 was not.
    BadUtf8,
    /// Trailing bytes remained after a complete top-level decode.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            WireError::BadLength(l) => write!(f, "implausible length {l}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encoder over a growable byte buffer.
pub struct Writer {
    buf: BytesMut,
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer {
    /// New empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer {
            buf: BytesMut::with_capacity(64),
        }
    }

    /// New writer with a capacity hint for large payloads (e.g. WRITE data).
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Finishes encoding and returns the frozen buffer.
    #[must_use]
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Appends a single raw byte (enum/option tag).
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.put_u128_le(v);
    }

    /// Appends a `bool` as one byte.
    pub fn boolean(&mut self, v: bool) {
        self.buf.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends any encodable value.
    pub fn value<T: WireWrite>(&mut self, v: &T) {
        v.write(self);
    }

    /// Appends an `Option` as a tag byte plus the value if present.
    pub fn option<T: WireWrite>(&mut self, v: &Option<T>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                x.write(self);
            }
        }
    }

    /// Appends a `u32`-count-prefixed sequence.
    pub fn seq<T: WireWrite>(&mut self, items: &[T]) {
        self.u32(items.len() as u32);
        for it in items {
            it.write(self);
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Upper bound on any single length prefix; guards against corrupt frames
/// allocating unbounded memory. 64 MiB comfortably exceeds the largest NFS
/// WRITE payload the system produces.
const MAX_LEN: u64 = 64 << 20;

/// Decoder over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// New reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Number of unread bytes.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails with [`WireError::TrailingBytes`] unless fully consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len()))
        }
    }

    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.buf.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        self.need(16)?;
        Ok(self.buf.get_u128_le())
    }

    /// Reads a `bool` byte (strictly 0 or 1).
    pub fn boolean(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = u64::from(self.u32()?);
        if len > MAX_LEN {
            return Err(WireError::BadLength(len));
        }
        let len = len as usize;
        self.need(len)?;
        let mut v = vec![0u8; len];
        self.buf.copy_to_slice(&mut v);
        Ok(v)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::BadUtf8)
    }

    /// Reads any decodable value.
    pub fn value<T: WireRead>(&mut self) -> Result<T, WireError> {
        T::read(self)
    }

    /// Reads an `Option` (tag byte plus value).
    pub fn option<T: WireRead>(&mut self) -> Result<Option<T>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::read(self)?)),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Reads a `u32`-count-prefixed sequence.
    pub fn seq<T: WireRead>(&mut self) -> Result<Vec<T>, WireError> {
        let n = self.u32()? as usize;
        if n as u64 > MAX_LEN {
            return Err(WireError::BadLength(n as u64));
        }
        let mut v = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            v.push(T::read(self)?);
        }
        Ok(v)
    }
}

/// Types that can encode themselves onto a [`Writer`].
pub trait WireWrite {
    /// Appends this value's encoding to `w`.
    fn write(&self, w: &mut Writer);

    /// One-shot encode into a fresh buffer.
    fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        self.write(&mut w);
        w.finish()
    }
}

/// Types that can decode themselves from a [`Reader`].
pub trait WireRead: Sized {
    /// Reads one value from `r`.
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// One-shot decode requiring the buffer to be fully consumed.
    fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let v = Self::read(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

macro_rules! impl_wire_int {
    ($t:ty, $wm:ident, $rm:ident) => {
        impl WireWrite for $t {
            fn write(&self, w: &mut Writer) {
                w.$wm(*self);
            }
        }
        impl WireRead for $t {
            fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
                r.$rm()
            }
        }
    };
}

impl_wire_int!(u8, u8, u8);
impl_wire_int!(u16, u16, u16);
impl_wire_int!(u32, u32, u32);
impl_wire_int!(u64, u64, u64);
impl_wire_int!(u128, u128, u128);

impl WireWrite for bool {
    fn write(&self, w: &mut Writer) {
        w.boolean(*self);
    }
}
impl WireRead for bool {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.boolean()
    }
}

impl WireWrite for String {
    fn write(&self, w: &mut Writer) {
        w.string(self);
    }
}
impl WireRead for String {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.string()
    }
}

impl WireWrite for Vec<u8> {
    fn write(&self, w: &mut Writer) {
        w.bytes(self);
    }
}
impl WireRead for Vec<u8> {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.bytes()
    }
}

impl<T: WireWrite> WireWrite for Option<T> {
    fn write(&self, w: &mut Writer) {
        w.option(self);
    }
}
impl<T: WireRead> WireRead for Option<T> {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.option()
    }
}

impl WireWrite for kosha_id::Id {
    fn write(&self, w: &mut Writer) {
        w.u128(self.0);
    }
}
impl WireRead for kosha_id::Id {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(kosha_id::Id(r.u128()?))
    }
}

impl<A: WireWrite, B: WireWrite> WireWrite for (A, B) {
    fn write(&self, w: &mut Writer) {
        self.0.write(w);
        self.1.write(w);
    }
}
impl<A: WireRead, B: WireRead> WireRead for (A, B) {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::read(r)?, B::read(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(1 << 20);
        w.u64(u64::MAX);
        w.u128(u128::MAX - 1);
        w.boolean(true);
        w.string("héllo");
        w.bytes(&[1, 2, 3]);
        let buf = w.finish();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 1 << 20);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u128().unwrap(), u128::MAX - 1);
        assert!(r.boolean().unwrap());
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_fails() {
        let mut w = Writer::new();
        w.u64(42);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..5]);
        assert_eq!(r.u64(), Err(WireError::Truncated));
    }

    #[test]
    fn bad_bool_tag() {
        let buf = [3u8];
        let mut r = Reader::new(&buf);
        assert_eq!(r.boolean(), Err(WireError::BadTag(3)));
    }

    #[test]
    fn option_and_seq() {
        let mut w = Writer::new();
        w.option(&Some(9u32));
        w.option::<u32>(&None);
        w.seq(&[1u64, 2, 3]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.option::<u32>().unwrap(), Some(9));
        assert_eq!(r.option::<u32>().unwrap(), None);
        assert_eq!(r.seq::<u64>().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let buf = w.finish();
        assert!(matches!(u8::decode(&buf), Err(WireError::TrailingBytes(1))));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // length prefix far beyond MAX_LEN
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.bytes(), Err(WireError::BadLength(_))));
    }

    #[test]
    fn id_round_trips() {
        let id = kosha_id::Id(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        let buf = id.encode();
        assert_eq!(kosha_id::Id::decode(&buf).unwrap(), id);
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut w = Writer::new();
        w.bytes(&[0xff, 0xfe]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.string(), Err(WireError::BadUtf8));
    }
}
