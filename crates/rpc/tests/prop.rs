//! Property tests for the wire codec and the simulated transport.

use bytes::Bytes;
use kosha_rpc::{
    LatencyModel, Network, NodeAddr, Reader, RpcError, RpcHandler, RpcRequest, RpcResponse,
    ServiceId, ServiceMux, SimNetwork, TraceHeader, WireRead, WireWrite, Writer,
};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Any sequence of primitive writes reads back identically.
    #[test]
    fn primitive_sequences_round_trip(values in proptest::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(|v| ("u8", v as u128)),
            any::<u16>().prop_map(|v| ("u16", v as u128)),
            any::<u32>().prop_map(|v| ("u32", v as u128)),
            any::<u64>().prop_map(|v| ("u64", v as u128)),
            any::<u128>().prop_map(|v| ("u128", v)),
            any::<bool>().prop_map(|v| ("bool", v as u128)),
        ],
        0..40,
    )) {
        let mut w = Writer::new();
        for (kind, v) in &values {
            match *kind {
                "u8" => w.u8(*v as u8),
                "u16" => w.u16(*v as u16),
                "u32" => w.u32(*v as u32),
                "u64" => w.u64(*v as u64),
                "u128" => w.u128(*v),
                _ => w.boolean(*v != 0),
            }
        }
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        for (kind, v) in &values {
            match *kind {
                "u8" => prop_assert_eq!(r.u8().unwrap() as u128, *v),
                "u16" => prop_assert_eq!(r.u16().unwrap() as u128, *v),
                "u32" => prop_assert_eq!(r.u32().unwrap() as u128, *v),
                "u64" => prop_assert_eq!(r.u64().unwrap() as u128, *v),
                "u128" => prop_assert_eq!(r.u128().unwrap(), *v),
                _ => prop_assert_eq!(r.boolean().unwrap(), *v != 0),
            }
        }
        r.expect_end().unwrap();
    }

    /// Strings and byte blobs survive together with options and
    /// sequences.
    #[test]
    fn composite_round_trip(
        s1 in "\\PC{0,40}",
        blob in proptest::collection::vec(any::<u8>(), 0..200),
        opt in proptest::option::of(any::<u64>()),
        seq in proptest::collection::vec(any::<u32>(), 0..20),
    ) {
        let mut w = Writer::new();
        w.string(&s1);
        w.bytes(&blob);
        w.option(&opt);
        w.seq(&seq);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.string().unwrap(), s1);
        prop_assert_eq!(r.bytes().unwrap(), blob);
        prop_assert_eq!(r.option::<u64>().unwrap(), opt);
        prop_assert_eq!(r.seq::<u32>().unwrap(), seq);
    }

    /// Decoding random bytes never panics.
    #[test]
    fn reader_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut r = Reader::new(&bytes);
        let _ = r.string();
        let mut r = Reader::new(&bytes);
        let _ = r.seq::<u64>();
        let mut r = Reader::new(&bytes);
        let _ = r.option::<u128>();
        let _ = ServiceId::decode(&bytes);
    }
}

fn service_strategy() -> impl Strategy<Value = ServiceId> {
    prop_oneof![
        Just(ServiceId::Pastry),
        Just(ServiceId::Nfs),
        Just(ServiceId::Kosha),
        Just(ServiceId::KoshaFs),
        Just(ServiceId::KoshaReplica),
    ]
}

proptest! {
    /// Request frames round-trip through the wire codec, traced or not,
    /// and the encoded length always matches `wire_size`.
    #[test]
    fn request_frames_round_trip(
        service in service_strategy(),
        body in proptest::collection::vec(any::<u8>(), 0..256),
        trace in proptest::option::of((1u64..=u64::MAX, 1u64..=u64::MAX)),
    ) {
        let req = RpcRequest {
            service,
            trace: trace.map(|(t, s)| TraceHeader {
                trace_id: t,
                span_id: s,
            }),
            body: Bytes::from(body),
        };
        let frame = req.encode();
        prop_assert_eq!(frame.len(), req.wire_size());
        let back = RpcRequest::decode(&frame).unwrap();
        prop_assert_eq!(back.service, req.service);
        prop_assert_eq!(back.trace, req.trace);
        prop_assert_eq!(&back.body[..], &req.body[..]);
    }

    /// Old-format frames (raw service tag + body, no trace header) decode
    /// against the new codec: mixed-version clusters interoperate.
    #[test]
    fn legacy_frames_decode_against_new_codec(
        service in service_strategy(),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut w = Writer::new();
        service.write(&mut w);
        w.bytes(&body);
        let legacy = w.finish();
        let back = RpcRequest::decode(&legacy).unwrap();
        prop_assert_eq!(back.service, service);
        prop_assert_eq!(back.trace, None);
        prop_assert_eq!(&back.body[..], &body[..]);
        // And an untraced request re-encodes to the exact legacy bytes.
        prop_assert_eq!(back.encode(), legacy);
    }

    /// Decoding arbitrary request frames never panics.
    #[test]
    fn request_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = RpcRequest::decode(&bytes);
    }
}

struct Echo;
impl RpcHandler for Echo {
    fn handle(&self, _from: NodeAddr, body: &[u8]) -> Result<RpcResponse, RpcError> {
        Ok(RpcResponse {
            body: Bytes::copy_from_slice(body),
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Transport invariant: calls to live nodes always succeed, calls to
    /// failed/unknown nodes always fail, and recovery restores service —
    /// for arbitrary interleavings of failures and recoveries.
    #[test]
    fn simnet_failure_semantics(events in proptest::collection::vec(
        (0u64..6, any::<bool>()), // (node, fail?=true / recover?=false)
        0..30,
    )) {
        let net = SimNetwork::new(LatencyModel::zero());
        for a in 0..6u64 {
            let mux = Arc::new(ServiceMux::new());
            mux.register(ServiceId::Nfs, Arc::new(Echo));
            net.attach(NodeAddr(a), mux);
        }
        let mut down = [false; 6];
        for (node, fail) in events {
            if fail {
                net.fail_node(NodeAddr(node));
                down[node as usize] = true;
            } else {
                net.recover_node(NodeAddr(node));
                down[node as usize] = false;
            }
            // Probe every node after every event.
            for a in 0..6u64 {
                let req = RpcRequest::new(ServiceId::Nfs, &a);
                let result = net.call(NodeAddr(0), NodeAddr(a), req);
                if down[a as usize] {
                    prop_assert!(matches!(result, Err(RpcError::Unreachable(_))));
                } else {
                    prop_assert_eq!(result.unwrap().decode::<u64>().unwrap(), a);
                }
                prop_assert_eq!(net.is_up(NodeAddr(a)), !down[a as usize]);
            }
        }
    }
}
