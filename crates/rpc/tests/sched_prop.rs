//! Property tests for the event-heap scheduler (ISSUE 7 determinism
//! contract): pop order is exactly the stable `(deadline, seq)` sort of
//! the insert sequence, and identical insert sequences drain to
//! byte-identical event streams — the property the CI bench gates
//! (double-run `diff` on `BENCH_*.json`) ultimately rest on.

use kosha_rpc::{Clock, LatencyModel, Scheduler, SimNetwork, SimTime};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Drains a scheduler completely, rendering each event as bytes so two
/// drains can be compared for *byte* identity, not just logical
/// equality.
fn drain_bytes(s: &Scheduler<u64>) -> Vec<u8> {
    let mut out = Vec::new();
    while let Some((deadline, payload)) = s.pop_due(u64::MAX) {
        out.extend_from_slice(&deadline.to_le_bytes());
        out.extend_from_slice(&payload.to_le_bytes());
    }
    out
}

proptest! {
    /// Pop order matches the stable sort of `(deadline, insertion seq)`
    /// regardless of insert order, heap shape, or duplicate deadlines.
    #[test]
    fn pop_order_is_deadline_then_seq(deadlines in proptest::collection::vec(any::<u64>(), 0..200)) {
        let s: Scheduler<u64> = Scheduler::new();
        for (i, &d) in deadlines.iter().enumerate() {
            s.schedule_at(d, 0, i as u64);
        }
        let mut drained = Vec::new();
        while let Some((d, i)) = s.pop_due(u64::MAX) {
            drained.push((d, i));
        }
        let mut expected: Vec<(u64, u64)> = deadlines
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u64))
            .collect();
        // seq == insertion index, so a stable sort on deadline is the
        // (deadline, seq) order.
        expected.sort_by_key(|&(d, _)| d);
        prop_assert_eq!(drained, expected);
    }

    /// Same inserts ⇒ byte-identical drain: two schedulers fed the same
    /// sequence produce the same event stream down to the byte.
    #[test]
    fn identical_inserts_drain_byte_identically(
        deadlines in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let a: Scheduler<u64> = Scheduler::new();
        let b: Scheduler<u64> = Scheduler::new();
        for (i, &d) in deadlines.iter().enumerate() {
            a.schedule_at(d, 0, i as u64);
            b.schedule_at(d, 0, i as u64);
        }
        prop_assert_eq!(drain_bytes(&a), drain_bytes(&b));
    }

    /// `pop_due` horizons partition the drain without reordering it:
    /// draining in two phases split at an arbitrary horizon yields the
    /// same stream as draining in one.
    #[test]
    fn horizon_split_preserves_order(
        deadlines in proptest::collection::vec(any::<u64>(), 0..200),
        split in any::<u64>(),
    ) {
        let whole: Scheduler<u64> = Scheduler::new();
        let phased: Scheduler<u64> = Scheduler::new();
        for (i, &d) in deadlines.iter().enumerate() {
            whole.schedule_at(d, 0, i as u64);
            phased.schedule_at(d, 0, i as u64);
        }
        let mut two_phase = Vec::new();
        while let Some(ev) = phased.pop_due(split) {
            two_phase.push(ev);
        }
        while let Some(ev) = phased.pop_due(u64::MAX) {
            two_phase.push(ev);
        }
        let mut one_phase = Vec::new();
        while let Some(ev) = whole.pop_due(u64::MAX) {
            one_phase.push(ev);
        }
        prop_assert_eq!(two_phase, one_phase);
    }
}

/// End-to-end through the transport: timers planted out of order fire
/// in deadline order under `run_for`, and the virtual clock lands
/// exactly on the run horizon.
#[test]
fn simnet_timers_fire_in_deadline_order() {
    let net = SimNetwork::new(LatencyModel::zero());
    let fired = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let order = Arc::new(AtomicUsize::new(0));
    for (label, after_ms) in [
        ("late", 30u64),
        ("early", 10),
        ("mid", 20),
        ("early-tie", 10),
    ] {
        let fired = Arc::clone(&fired);
        let order = Arc::clone(&order);
        net.schedule_after(Duration::from_millis(after_ms), move || {
            let n = order.fetch_add(1, Ordering::SeqCst);
            fired.lock().push((n, label));
        });
    }
    net.run_for(Duration::from_millis(25));
    assert_eq!(
        *fired.lock(),
        vec![(0, "early"), (1, "early-tie"), (2, "mid")]
    );
    assert_eq!(net.virtual_clock().now(), SimTime(25_000_000));
    // The horizon gated the last timer; a second run releases it.
    net.run_for(Duration::from_millis(25));
    assert_eq!(fired.lock().len(), 4);
    assert_eq!(fired.lock()[3], (3, "late"));
    assert_eq!(net.virtual_clock().now(), SimTime(50_000_000));
}
