//! Transport-level lockcheck integration: a lock held across a
//! blocking `Network::call` is flagged, journaled into the transport's
//! observability domain, and stamped with the active trace id.
//!
//! Lives in its own test binary (own process): it flips the global
//! panic-on-violation flag off, which must not leak into the suites
//! that assert the normal panicking behavior by *not* violating.

#![cfg(feature = "lockcheck")]

use std::sync::Arc;

use bytes::Bytes;
use kosha_rpc::network::{
    Network, NodeAddr, RpcError, RpcHandler, RpcRequest, RpcResponse, ServiceId, ServiceMux,
};
use kosha_rpc::SimNetwork;
use parking_lot::{lockcheck, Mutex};

struct Echo;
impl RpcHandler for Echo {
    fn handle(&self, _from: NodeAddr, body: &[u8]) -> Result<RpcResponse, RpcError> {
        Ok(RpcResponse {
            body: Bytes::copy_from_slice(body),
        })
    }
}

fn net_with_echo() -> Arc<SimNetwork> {
    let net = SimNetwork::new_zero_latency();
    for a in [1, 2] {
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Nfs, Arc::new(Echo));
        net.attach(NodeAddr(a), mux);
    }
    net
}

#[test]
fn held_lock_across_call_is_journaled() {
    let _ = lockcheck::set_panic_on_violation(false);
    let net = net_with_echo();
    let obs = net.obs();

    // Clean call: no lock held, no violation event.
    let req = RpcRequest::new(ServiceId::Nfs, &7u32);
    net.call(NodeAddr(1), NodeAddr(2), req.clone()).unwrap();
    assert!(obs.journal.of_kind("lockcheck_held_rpc").is_empty());

    // Same call with a tracked lock held: still succeeds (panic is
    // disabled) but the violation lands in this transport's journal,
    // carrying the ambient trace id.
    let state = Mutex::new(0u32);
    let clock = net.clock();
    let events = {
        let _guard = state.lock();
        obs.tracer.root(
            "held-rpc",
            1,
            || clock.now().0,
            || {
                net.call(NodeAddr(1), NodeAddr(2), req).unwrap();
                obs.journal.of_kind("lockcheck_held_rpc")
            },
        )
    };
    assert_eq!(events.len(), 1, "{events:?}");
    let ev = &events[0];
    assert_eq!(ev.node, 1);
    assert!(
        ev.detail.contains("SimNetwork::call") && ev.detail.contains("mutex"),
        "{}",
        ev.detail
    );
    assert_ne!(ev.trace_id, 0, "violation must carry the active trace id");
}
