//! Runs a small cluster scenario under the simulated transport and
//! prints everything the observability layer captured: the transport's
//! per-service RPC metrics, one node's metric registry (Prometheus text
//! and compact JSON), and the tail of its event journal.
//!
//! The scenario — build, populate, kill the primary of a replicated
//! directory, read through the failover — is fixed, and `SimNetwork`
//! stamps everything on the virtual clock, so two runs print identical
//! bytes. Pass `--json` to emit only the JSON dumps (for diffing in CI
//! or feeding a plotting script).

use kosha::{KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_rpc::{LatencyModel, Network, NodeAddr, SimNetwork};
use std::sync::Arc;

const NODES: usize = 6;

fn main() {
    let json_only = std::env::args().any(|a| a == "--json");

    let net = SimNetwork::new(LatencyModel::default());
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 2;

    let mut nodes: Vec<Arc<KoshaNode>> = Vec::new();
    for i in 0..NODES {
        let id = node_id_from_seed(&format!("kosha-host-{i}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(i as u64),
            net.clone() as Arc<dyn Network>,
        );
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
            .expect("join");
        nodes.push(node);
    }

    let m = KoshaMount::new(
        net.clone() as Arc<dyn Network>,
        nodes[0].addr(),
        nodes[0].addr(),
    )
    .expect("mount");

    // Populate: a handful of distributed directories with files, then
    // read them all back (replica reads stay off: default config).
    for d in 0..4 {
        m.mkdir_p(&format!("/proj{d}/src")).expect("mkdir");
        for f in 0..3 {
            m.write_file(&format!("/proj{d}/src/file{f}.rs"), &[d as u8 + 1; 2048])
                .expect("write");
        }
    }
    for d in 0..4 {
        for f in 0..3 {
            m.read_file(&format!("/proj{d}/src/file{f}.rs"))
                .expect("read");
        }
    }

    // Kill the primary of one of the directories (the first hosted off
    // the gateway) and read through the failover so the journal has
    // something to say.
    'kill: for d in 0..4 {
        let anchor = format!("/proj{d}");
        for n in &nodes {
            if n.addr() != nodes[0].addr() && n.hosted_anchors().iter().any(|(p, _)| p == &anchor) {
                net.fail_node(n.addr());
                m.read_file(&format!("{anchor}/src/file0.rs"))
                    .expect("failover read");
                break 'kill;
            }
        }
    }

    let tobs = net.obs();
    let gobs = nodes[0].obs();

    if json_only {
        println!("{}", tobs.registry.to_json());
        println!("{}", gobs.registry.to_json());
        return;
    }

    println!("==== transport RPC metrics (cluster-wide) ====");
    print!("{}", tobs.registry.render());
    println!();
    println!("==== gateway node metrics (node 0) ====");
    print!("{}", gobs.registry.render());
    println!();
    println!("==== gateway node metrics (node 0, JSON) ====");
    println!("{}", gobs.registry.to_json());
    println!();
    println!("==== gateway journal (last 20 events) ====");
    print!("{}", gobs.journal.render_recent(20));
}
