//! Regenerates Figure 6: cumulative insertion-failure ratio versus
//! storage utilization as the redirection-attempt budget grows
//! (0/1/2/4/8/15 attempts; distribution level 4; 3 replicas;
//! heterogeneous 8×3 GB + 4×4 GB + 4×5 GB nodes).

use kosha_sim::experiments::Fig6;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (runs, scale) = if full { (50, 1.0) } else { (10, 0.25) };
    let f = Fig6::run(&[0, 1, 2, 4, 8, 15], runs, scale);
    println!("{}", f.render());
    println!(
        "Paper reference: with 4 redirections the failure ratio stays near 0 up\n\
         to 60% utilization and stays under ~12% as utilization approaches 100%."
    );
}
