//! Regenerates Table 2: MAB execution time as the distribution level is
//! increased from 1 to 4 at a fixed cluster size of 4 nodes.

fn main() {
    let t = kosha_sim::experiments::Table2::run(false);
    println!("{}", t.render());
    println!("Paper reference: overheads vs level 1 of ~5% (L2), ~9% (L3), ~10% (L4) total.");
}
