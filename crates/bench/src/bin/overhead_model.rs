//! Evaluates the Section 6.1.2 analytical overhead model
//! `D = I + (H·hc)·(N−1)/N` out to the paper's 10⁴-node design point.

use kosha_sim::model::OverheadModel;

fn main() {
    let m = OverheadModel::default();
    println!("Analytical overhead model D(N) = I + H*hc*(N-1)/N");
    println!(
        "I = {:?}, hc = {:?}, digit base = {}",
        m.interposition,
        m.hop_latency,
        1u32 << m.digit_bits
    );
    println!("{:>8} {:>6} {:>10} {:>12}", "N", "H", "(N-1)/N", "D");
    for n in [1u64, 2, 4, 8, 16, 64, 256, 1024, 4096, 10_000, 65_536] {
        println!(
            "{:>8} {:>6} {:>10.4} {:>12.3?}",
            n,
            m.hops(n),
            m.remote_fraction(n),
            m.overhead(n)
        );
    }
    println!(
        "\nPaper reference: at N = 10^4, H <= 4 and hc < 1 ms, so D does not\n\
         exceed 4 ms plus the constant interposition factor."
    );

    // Validate the model against the measured full stack: the per-op
    // *overhead* of Kosha vs plain NFS for a metadata micro-workload
    // should follow D(N)'s saturating shape.
    use kosha_rpc::Clock;
    use kosha_sim::baseline::NfsBaseline;
    use kosha_sim::cluster::{ClusterParams, SimCluster};
    use kosha_sim::experiments::{mab_disk, mab_lan, table1_kosha_config};
    use kosha_sim::workbench::Workbench;

    let ops = 300usize;
    let run = |fs: &dyn Workbench, clock: &dyn Fn() -> std::time::Duration| {
        for d in 0..10 {
            fs.mkdir_p(&format!("/m{d}")).unwrap();
        }
        for i in 0..ops {
            fs.write_file(&format!("/m{}/f{i}", i % 10), b"x").unwrap();
        }
        let t0 = clock();
        for i in 0..ops {
            fs.stat(&format!("/m{}/f{i}", i % 10)).unwrap();
        }
        (clock() - t0) / ops as u32
    };

    let nfs_per_op = {
        let b = NfsBaseline::build(mab_lan(), mab_disk(), 64 << 30);
        let c = b.clock();
        run(&b, &|| c.now().as_duration())
    };
    println!("\nMeasured mean per-op latency (stat micro-workload):");
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "N", "per-op", "overhead", "model D(N)"
    );
    println!("{:>8} {:>14.3?} {:>14} {:>12}", "NFS", nfs_per_op, "-", "-");
    let mm = OverheadModel {
        interposition: std::time::Duration::from_micros(520),
        hop_latency: std::time::Duration::from_micros(360),
        digit_bits: 4,
    };
    for n in [1usize, 2, 4, 8] {
        let cluster = SimCluster::build(&ClusterParams {
            nodes: n,
            kosha: table1_kosha_config(),
            latency: mab_lan(),
            seed: 500 + n as u64,
        });
        let m = cluster.mount(0);
        let c = cluster.clock();
        let per_op = run(&m, &|| c.now().as_duration());
        let overhead = per_op.saturating_sub(nfs_per_op);
        println!(
            "{:>8} {:>14.3?} {:>14.3?} {:>12.3?}",
            n,
            per_op,
            overhead,
            mm.overhead(n as u64)
        );
    }
    println!(
        "\nThe measured overhead column should follow the model's saturating\n\
         (N-1)/N shape, within a small constant (extra koshad round trips)."
    );
}
