//! Deterministic hot-spot relief bench: the same seeded Zipf read storm
//! run twice — once with heat-driven cached replicas off (the baseline)
//! and once with them on — on a distance-aware simulated LAN.
//!
//! The paper's §6 load analysis worries about exactly this workload: a
//! few Zipf-popular files funnel most reads through one primary and its
//! K replica holders. With the feature on (DESIGN.md §16) primaries
//! spawn leased read-only copies past the heat threshold, the reader's
//! heat-weighted rotor leans on them, and the latency-EWMA filter picks
//! the nearest advertised holder. The bench reports, for both runs:
//!
//! * read latency p50/p99 from virtual-clock deltas around each READ,
//! * store-load skew across nodes (max/mean and Gini over real NFS ops),
//! * hot-copy counters (pushes, drops, lease invalidations),
//!
//! plus, for the hot run, the outstanding-copy count sampled over the
//! storm and after a long idle cool-down — the copies must shed back to
//! exactly K (a final count of zero).
//!
//! Everything runs on the virtual clock with seeded ids and a seeded
//! workload RNG; two invocations emit byte-identical output. The JSON
//! summary is written to `BENCH_hotspot.json` for CI's determinism gate.

use kosha::{cluster_flight, FlightOptions, FlightReport, KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_rpc::{Clock, LatencyModel, Network, NodeAddr, SimNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const NODES: usize = 8;
const FILES: usize = 8;
/// Unmeasured prefix of the same Zipf stream: spawns, first contacts,
/// and handle-cache warm-up happen here, so the measured phase compares
/// the two configurations' steady states.
const WARMUP: usize = 200;
const READS: usize = 900;
const SEED: u64 = 0x401_5eed;
/// Rewrite the rank-1 file this often: the storm exercises the write
/// path's synchronous lease invalidation, not just cold spreading.
const WRITE_EVERY: usize = 250;
/// Pump + sample cadence during the storm.
const TICK_EVERY: usize = 50;
/// Maintenance cadence (lease renewal rides on it).
const MAINTAIN_EVERY: usize = 150;

/// Zipf(s=1) sampler over ranks `1..=n` via integer inverse-CDF.
struct Zipf {
    cumulative: Vec<u64>,
}

impl Zipf {
    fn new(n: usize) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0u64;
        for rank in 1..=n as u64 {
            acc += 1_000_000 / rank;
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.random_range(0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }
}

struct RunOutcome {
    p50_nanos: u64,
    p99_nanos: u64,
    report: FlightReport,
    /// `(reads_done, outstanding hot copies)` samples over the storm,
    /// ending with the post-cool-down count.
    copies_series: Vec<(usize, i64)>,
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    sorted[(sorted.len() - 1) * p / 100]
}

fn run(hot: bool) -> RunOutcome {
    // A distance-aware LAN: hosts sit on a line, so the latency to a
    // holder depends on which holder serves — giving the reader's
    // EWMA filter real choices to exploit.
    let model = LatencyModel {
        per_distance_unit: Duration::from_micros(50),
        ..LatencyModel::default()
    };
    let net = SimNetwork::new(model);
    let mut nodes: Vec<Arc<KoshaNode>> = Vec::new();
    for i in 0..NODES {
        let id = node_id_from_seed(&format!("kosha-host-{i}"));
        let mut cfg = KoshaConfig::for_tests();
        cfg.distribution_level = 1;
        cfg.replicas = 1;
        cfg.read_from_replicas = true;
        if hot {
            cfg.hot_replicas = 5;
            cfg.hot_threshold_milli = 6_000;
            cfg.hot_lease_nanos = 5_000_000_000;
        }
        let addr = NodeAddr(i as u64 + 1);
        net.set_coord(addr, i as f64, 0.0);
        let (node, mux) = KoshaNode::build(cfg, id, addr, net.clone() as _);
        net.attach(addr, mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(1)) })
            .expect("join");
        nodes.push(node);
    }
    let mount =
        KoshaMount::new(net.clone() as Arc<dyn Network>, NodeAddr(1), NodeAddr(1)).expect("mount");

    for d in 0..4 {
        mount.mkdir_p(&format!("/kosha/d{d}")).expect("mkdir");
    }
    let paths: Vec<String> = (0..FILES)
        .map(|f| format!("/kosha/d{}/f{:02}", f % 4, f))
        .collect();
    for (f, p) in paths.iter().enumerate() {
        mount.write_file(p, &[f as u8; 512]).expect("seed file");
    }
    net.run_pumps();

    let copies_now = |nodes: &[Arc<KoshaNode>]| -> i64 {
        nodes
            .iter()
            .map(|n| n.obs().registry.gauge("kosha_hot_copies").get())
            .sum()
    };

    let zipf = Zipf::new(FILES);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut lat = Vec::with_capacity(READS);
    let mut copies_series = Vec::new();
    for i in 0..WARMUP + READS {
        let rank = zipf.sample(&mut rng);
        let t0 = net.clock().now().0;
        mount.read_file(&paths[rank]).expect("zipf read");
        if i >= WARMUP {
            lat.push(net.clock().now().0 - t0);
        }
        if (i + 1) % WRITE_EVERY == 0 {
            // A write into the hot set: leases void before the ack.
            mount
                .write_file(&paths[0], &[(i % 251) as u8; 512])
                .expect("hot write");
        }
        if (i + 1) % MAINTAIN_EVERY == 0 {
            for node in &nodes {
                node.maintain();
            }
        }
        if (i + 1) % TICK_EVERY == 0 {
            net.run_pumps();
            if i >= WARMUP {
                copies_series.push((i + 1 - WARMUP, copies_now(&nodes)));
            }
        }
    }
    net.run_pumps();

    // Long idle cool-down: heat decays far below the shed threshold, so
    // maintenance must revoke every cached copy.
    net.virtual_clock().advance(Duration::from_secs(600));
    for node in &nodes {
        node.maintain();
    }
    net.run_pumps();
    copies_series.push((READS, copies_now(&nodes)));

    let refs: Vec<&KoshaNode> = nodes.iter().map(|n| n.as_ref()).collect();
    let report = cluster_flight(
        Some(&net.obs()),
        &refs,
        net.clock().now().0,
        &FlightOptions::default(),
    );

    lat.sort_unstable();
    RunOutcome {
        p50_nanos: percentile(&lat, 50),
        p99_nanos: percentile(&lat, 99),
        report,
        copies_series,
    }
}

fn run_json(name: &str, o: &RunOutcome, trailing_comma: bool) -> String {
    format!(
        concat!(
            "  \"{}\": {{\n",
            "    \"read_p50_nanos\": {},\n",
            "    \"read_p99_nanos\": {},\n",
            "    \"skew\": {{\"max_over_mean_x1000\": {}, \"gini_x1000\": {}}},\n",
            "    \"hot\": {{\"copies_final\": {}, \"pushes\": {}, \"drops\": {}, \
             \"lease_invalidations\": {}}}\n",
            "  }}{}\n",
        ),
        name,
        o.p50_nanos,
        o.p99_nanos,
        o.report.skew_max_over_mean_x1000,
        o.report.skew_gini_x1000,
        o.report.hot.0,
        o.report.hot.1,
        o.report.hot.2,
        o.report.hot.3,
        if trailing_comma { "," } else { "" },
    )
}

fn main() {
    let json_only = std::env::args().any(|a| a == "--json");

    let base = run(false);
    let hot = run(true);

    let peak_copies = hot.copies_series.iter().map(|&(_, c)| c).max().unwrap_or(0);
    let final_copies = hot.copies_series.last().map_or(0, |&(_, c)| c);

    let mut series_json = String::new();
    for (i, &(reads, copies)) in hot.copies_series.iter().enumerate() {
        series_json.push_str(&format!(
            "    {{\"reads\": {}, \"copies\": {}}}{}\n",
            reads,
            copies,
            if i + 1 < hot.copies_series.len() {
                ","
            } else {
                ""
            }
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"nodes\": {},\n",
            "  \"files\": {},\n",
            "  \"reads\": {},\n",
            "{}",
            "{}",
            "  \"hot_copies_peak\": {},\n",
            "  \"hot_copies_series\": [\n{}  ]\n",
            "}}"
        ),
        NODES,
        FILES,
        READS,
        run_json("baseline", &base, true),
        run_json("hot", &hot, true),
        peak_copies,
        series_json,
    );
    std::fs::write("BENCH_hotspot.json", format!("{json}\n")).expect("write BENCH_hotspot.json");

    if json_only {
        println!("{json}");
    } else {
        println!("==== hot-spot relief (Zipf reads, baseline vs heat-driven copies) ====");
        println!("cluster: {NODES} nodes, {FILES} files, {READS} Zipf(s=1) READs, K=1");
        println!(
            "read latency: p50 {} -> {} ns, p99 {} -> {} ns",
            base.p50_nanos, hot.p50_nanos, base.p99_nanos, hot.p99_nanos
        );
        println!(
            "store-load skew: max/mean {} -> {} (x1000), gini {} -> {} (x1000)",
            base.report.skew_max_over_mean_x1000,
            hot.report.skew_max_over_mean_x1000,
            base.report.skew_gini_x1000,
            hot.report.skew_gini_x1000
        );
        println!(
            "hot copies: peak {peak_copies}, final {final_copies} (pushes {}, drops {}, lease invalidations {})",
            hot.report.hot.1, hot.report.hot.2, hot.report.hot.3
        );
        println!("wrote BENCH_hotspot.json");
    }

    // The feature must pay for itself on its target workload...
    assert!(
        hot.p99_nanos <= base.p99_nanos,
        "hot copies worsened p99 read latency: {} > {}",
        hot.p99_nanos,
        base.p99_nanos
    );
    assert!(
        hot.report.skew_gini_x1000 <= base.report.skew_gini_x1000,
        "hot copies worsened load skew: gini {} > {}",
        hot.report.skew_gini_x1000,
        base.report.skew_gini_x1000
    );
    // ...by actually spawning copies, which must all shed once cold.
    assert!(peak_copies > 0, "the storm never spawned a hot copy");
    assert_eq!(final_copies, 0, "copies survived the cool-down");
    assert_eq!(
        hot.report.hot.0, 0,
        "flight report still counts outstanding copies"
    );
    // The baseline run must be genuinely feature-off.
    assert_eq!(base.report.hot, (0, 0, 0, 0), "baseline spawned hot state");
    // Writes into the hot set voided leases synchronously.
    assert!(
        hot.report.hot.3 > 0,
        "storm writes never invalidated a lease"
    );
}
