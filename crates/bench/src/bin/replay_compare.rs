//! Beyond the paper: day-in-the-life operation-trace replay comparing
//! Kosha (at several cluster sizes) with the central-NFS baseline, in
//! modeled (virtual) time. Complements the MAB's compile-burst shape
//! with a sustained, read-heavy, hot-set-skewed stream.

use kosha_sim::baseline::NfsBaseline;
use kosha_sim::cluster::{ClusterParams, SimCluster};
use kosha_sim::experiments::{mab_disk, mab_lan, table1_kosha_config};
use kosha_sim::replay::{generate_ops, populate, replay, ReplayParams};
use kosha_sim::{FsTrace, TraceParams};

fn main() {
    let trace = FsTrace::generate(&TraceParams {
        seed: 5,
        ..TraceParams::default().scaled(0.002)
    });
    let params = ReplayParams {
        ops: 4000,
        ..Default::default()
    };
    let ops = generate_ops(&trace, &params);
    println!(
        "replay: {} ops over {} files ({}% reads, skew {})\n",
        ops.len(),
        trace.files.len(),
        (params.read_fraction * 100.0) as u32,
        params.skew
    );
    println!(
        "{:<16} {:>12} {:>12} {:>14} {:>10}",
        "system", "virtual s", "ops/vsec", "mean latency", "errors"
    );

    // Baseline.
    {
        let b = NfsBaseline::build(mab_lan(), mab_disk(), 64 << 30);
        populate(&trace, &b).expect("populate baseline");
        let clock = b.clock();
        clock.reset();
        let rep = replay(&ops, &b, &clock);
        print_row("nfs-central", &rep);
    }

    for nodes in [2usize, 4, 8] {
        let cluster = SimCluster::build(&ClusterParams {
            nodes,
            kosha: table1_kosha_config(),
            latency: mab_lan(),
            seed: 300 + nodes as u64,
        });
        let m = cluster.mount(0);
        populate(&trace, &m).expect("populate kosha");
        let clock = cluster.clock();
        clock.reset();
        let rep = replay(&ops, &m, &clock);
        print_row(&format!("kosha-{nodes}"), &rep);
    }
    // Kosha behind a caching kernel-style client (§4.1.1): the hot-set
    // skew makes attribute/data caches absorb most interposition cost.
    {
        use kosha_rpc::Network;
        use std::sync::Arc;
        let cluster = SimCluster::build(&ClusterParams {
            nodes: 8,
            kosha: table1_kosha_config(),
            latency: mab_lan(),
            seed: 308,
        });
        let m = kosha_sim::CachedKoshaMount::new(
            cluster.net.clone() as Arc<dyn Network>,
            cluster.nodes[0].addr(),
            cluster.nodes[0].addr(),
            kosha_nfs::CacheConfig::default(),
        )
        .expect("cached mount");
        populate(&trace, &m).expect("populate kosha cached");
        let clock = cluster.clock();
        clock.reset();
        let rep = replay(&ops, &m, &clock);
        print_row("kosha-8+cache", &rep);
    }
    println!(
        "\nExpected shape: uncached Kosha pays roughly the per-op interposition\n\
         and hop costs visible in Table 1's stat/grep rows; the caching client\n\
         (standard kernel NFS behavior) absorbs most of it; errors must be zero."
    );
}

fn print_row(name: &str, rep: &kosha_sim::replay::ReplayReport) {
    let vsec = rep.elapsed_ns as f64 / 1e9;
    println!(
        "{:<16} {:>12.3} {:>12.0} {:>14.3?} {:>10}",
        name,
        vsec,
        rep.total_ops() as f64 / vsec.max(1e-9),
        rep.mean_latency(),
        rep.errors
    );
}
