//! Deterministic flight-recorder bench: a Zipf-distributed read
//! workload against an 8-node cluster with replica reads on, reported
//! through the recorder/heat/skew analytics this PR introduces.
//!
//! A seeded Zipf(s=1) stream of READs over 32 files concentrates demand
//! on a few objects — the access pattern the paper's §6 load-balance
//! analysis worries about and the ROADMAP's popularity-aware read
//! scaling will act on. The bench reports:
//!
//! * the read-heat top-N (the hot set, with the sketch's error bounds),
//! * node load skew (max/mean and Gini over real store ops),
//! * the flight recorder's footprint: live series, points, the memory
//!   ceiling, and how many downsample merges bounded it.
//!
//! Everything runs on the virtual clock with seeded ids and a seeded
//! workload RNG; two runs emit byte-identical output. The JSON summary
//! is written to `BENCH_recorder.json` for CI's determinism gate.

use kosha::{cluster_flight, FlightOptions, KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_rpc::{LatencyModel, Network, NodeAddr, SimNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const NODES: usize = 8;
const FILES: usize = 32;
const READS: usize = 600;
const SEED: u64 = 0x5eed_c0de;

/// Zipf(s=1) sampler over ranks `1..=n`: inverse-CDF over the precomputed
/// cumulative weights `H(k) = Σ 1/r`, scaled to integers so the draw is
/// pure integer comparison (deterministic).
struct Zipf {
    cumulative: Vec<u64>,
}

impl Zipf {
    fn new(n: usize) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0u64;
        for rank in 1..=n as u64 {
            acc += 1_000_000 / rank;
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.random_range(0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }
}

fn main() {
    let json_only = std::env::args().any(|a| a == "--json");

    let net = SimNetwork::new(LatencyModel::default());
    let mut nodes: Vec<Arc<KoshaNode>> = Vec::new();
    for i in 0..NODES {
        let id = node_id_from_seed(&format!("kosha-host-{i}"));
        let mut cfg = KoshaConfig::for_tests();
        cfg.distribution_level = 1;
        cfg.replicas = 2;
        cfg.read_from_replicas = true;
        let (node, mux) = KoshaNode::build(cfg, id, NodeAddr(i as u64 + 1), net.clone() as _);
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(1)) })
            .expect("join");
        nodes.push(node);
    }
    let mount =
        KoshaMount::new(net.clone() as Arc<dyn Network>, NodeAddr(1), NodeAddr(1)).expect("mount");

    // Files spread over four distributed directories so store load has
    // room to skew with popularity.
    for d in 0..4 {
        mount.mkdir_p(&format!("/kosha/d{d}")).expect("mkdir");
    }
    let paths: Vec<String> = (0..FILES)
        .map(|f| format!("/kosha/d{}/f{:02}", f % 4, f))
        .collect();
    for (f, p) in paths.iter().enumerate() {
        mount.write_file(p, &[f as u8; 512]).expect("seed file");
    }
    net.run_pumps();

    // The Zipf read storm, with a recorder tick every 20 reads so the
    // series see the workload evolve rather than one final point.
    let zipf = Zipf::new(FILES);
    let mut rng = StdRng::seed_from_u64(SEED);
    for i in 0..READS {
        let rank = zipf.sample(&mut rng);
        mount.read_file(&paths[rank]).expect("zipf read");
        if i % 20 == 19 {
            net.run_pumps();
        }
    }
    net.run_pumps();

    let refs: Vec<&KoshaNode> = nodes.iter().map(|n| n.as_ref()).collect();
    let opts = FlightOptions::default();
    let report = cluster_flight(Some(&net.obs()), &refs, net.clock().now().0, &opts);

    // Recorder footprint across all domains, plus a depth probe of one
    // known-busy series on the transport.
    let transport_obs = net.obs();
    let probe = "rpc_calls_total{service=\"nfs\"}";
    let probe_points = transport_obs.recorder.series(probe).map_or(0, |p| p.len());
    let ticks = transport_obs.recorder.ticks();

    let mut heat_json = String::new();
    for (i, e) in report.heat.iter().enumerate() {
        heat_json.push_str(&format!(
            "    {{\"key\": \"{}\", \"heat_milli\": {}, \"err_milli\": {}}}{}\n",
            e.key,
            e.heat_milli,
            e.err_milli,
            if i + 1 < report.heat.len() { "," } else { "" }
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"nodes\": {},\n",
            "  \"files\": {},\n",
            "  \"reads\": {},\n",
            "  \"heat_top\": [\n{}  ],\n",
            "  \"skew\": {{\"max_over_mean_x1000\": {}, \"gini_x1000\": {}}},\n",
            "  \"slo\": {{\"burn_x1000\": {}, \"over\": {}, \"total\": {}}},\n",
            "  \"recorder\": {{\n",
            "    \"series\": {},\n",
            "    \"memory_ceiling_bytes\": {},\n",
            "    \"downsamples\": {},\n",
            "    \"dropped\": {},\n",
            "    \"transport_ticks\": {},\n",
            "    \"probe_series_points\": {}\n",
            "  }}\n",
            "}}"
        ),
        NODES,
        FILES,
        READS,
        heat_json,
        report.skew_max_over_mean_x1000,
        report.skew_gini_x1000,
        report.slo.0,
        report.slo.1,
        report.slo.2,
        report.total_series,
        report.memory_ceiling_bytes,
        report.telemetry_drops.3,
        report.telemetry_drops.2,
        ticks,
        probe_points,
    );
    std::fs::write("BENCH_recorder.json", format!("{json}\n")).expect("write BENCH_recorder.json");

    if json_only {
        println!("{json}");
    } else {
        println!("==== flight recorder report (Zipf reads) ====");
        println!(
            "cluster: {NODES} nodes, {FILES} files, {READS} Zipf(s=1) READs, replica reads on"
        );
        println!("hot set (top {}):", report.heat.len());
        for (i, e) in report.heat.iter().enumerate() {
            println!(
                "  {:>2}. {}  heat={}.{:03}  err={}.{:03}",
                i + 1,
                e.key,
                e.heat_milli / 1000,
                e.heat_milli % 1000,
                e.err_milli / 1000,
                e.err_milli % 1000
            );
        }
        println!(
            "load skew: max/mean {}.{:03}x, gini {}.{:03}",
            report.skew_max_over_mean_x1000 / 1000,
            report.skew_max_over_mean_x1000 % 1000,
            report.skew_gini_x1000 / 1000,
            report.skew_gini_x1000 % 1000
        );
        println!(
            "recorder: {} series, {} B ceiling, {} downsamples, {} dropped, {} transport ticks, probe {} points",
            report.total_series,
            report.memory_ceiling_bytes,
            report.telemetry_drops.3,
            report.telemetry_drops.2,
            ticks,
            probe_points
        );
        println!("wrote BENCH_recorder.json");
    }

    // The hottest object must be the Zipf rank-1 file.
    assert_eq!(
        report.heat.first().map(|e| e.key.as_str()),
        Some(paths[0].as_str()),
        "rank-1 file is not the hottest"
    );
    // A Zipf workload over a hashed namespace must show real skew.
    assert!(
        report.skew_gini_x1000 > 0,
        "zipf reads produced perfectly uniform node load"
    );
    assert!(
        report.skew_max_over_mean_x1000 > 1000,
        "max/mean skew should exceed 1.0"
    );
    // Recorder memory stays bounded: every series is capped, so the
    // ceiling is series_count × capacity × 16 bytes at most.
    let cap = kosha_obs::recorder::DEFAULT_SERIES_CAPACITY;
    assert!(
        report.memory_ceiling_bytes <= report.total_series * cap * 16,
        "memory ceiling {} exceeds series bound",
        report.memory_ceiling_bytes
    );
    // The probe series actually accumulated points (the samplers ran)
    // and never exceeded its ring capacity.
    assert!(probe_points > 0, "transport recorder never ticked");
    assert!(probe_points <= cap, "series exceeded its capacity");
}
