//! Regenerates Figure 7: percentage of files available over the 840-hour
//! availability trace, for replica counts K = 0..4 at distribution
//! level 3, including the mass-failure spike at hour 615.

use kosha_sim::experiments::Fig7;
use kosha_sim::AvailabilityParams;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (runs, machines, scale) = if full {
        (20, 4096, 0.25)
    } else {
        (5, 1024, 0.05)
    };
    let params = AvailabilityParams {
        machines,
        ..Default::default()
    };
    let f = Fig7::run(params, scale, runs);
    println!("{}", f.render());
    println!(
        "Paper reference: Kosha-3 averages 99.9968% availability; at the hour-615\n\
         spike over 12% of files are unavailable for Kosha-0 vs 0.16% for Kosha-3."
    );
}
