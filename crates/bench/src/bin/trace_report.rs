//! Deterministic causal-trace report over the paper's two hot paths:
//! replicated writes (the K-replica `call_many` fan-out) and cold deep-
//! path resolution. Each operation runs under a client root span on the
//! virtual clock; every NFS procedure, koshad loopback op, control call,
//! Pastry route, and replica RPC joins the same trace via the RPC wire
//! header. The collected span trees are reduced to per-op critical-path
//! breakdowns (parallel replica spans charged as their `max`, not their
//! sum) and folded stacks.
//!
//! Everything runs on seeded ids and the virtual clock, and the report
//! contains no raw span ids, so two runs emit byte-identical output; the
//! JSON summary is written to `BENCH_trace.json` for CI's determinism
//! check.

use kosha::{KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_obs::trace::{build_traces, folded_stacks, report_json, TraceTree};
use kosha_obs::SpanRecord;
use kosha_rpc::{LatencyModel, Network, NodeAddr, SimNetwork};
use std::sync::Arc;

const NODES: usize = 8;
const REPLICAS: usize = 3;
const WRITE_OPS: usize = 6;
const WALK_DIR: &str = "/walk/a/b/c/d/e/f";

struct Cluster {
    net: Arc<SimNetwork>,
    nodes: Vec<Arc<KoshaNode>>,
}

fn build_cluster(cfg: KoshaConfig) -> Cluster {
    let net = SimNetwork::new(LatencyModel::default());
    let mut nodes = Vec::new();
    for i in 0..NODES {
        let id = node_id_from_seed(&format!("kosha-host-{i}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(i as u64),
            net.clone() as Arc<dyn Network>,
        );
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
            .expect("join");
        nodes.push(node);
    }
    Cluster { net, nodes }
}

/// Drains every span buffer in the cluster (transport + all nodes).
fn collect_spans(c: &Cluster) -> Vec<SpanRecord> {
    let mut spans = c.net.obs().tracer.take();
    for n in &c.nodes {
        spans.extend(n.obs().tracer.take());
    }
    spans
}

fn mount(c: &Cluster) -> KoshaMount {
    KoshaMount::new(
        c.net.clone() as Arc<dyn Network>,
        c.nodes[0].addr(),
        c.nodes[0].addr(),
    )
    .expect("mount")
}

/// A trace whose replica fan-out ran in parallel: some span has >= 2
/// `rpc:replica` children sharing a start instant.
fn has_parallel_fanout(t: &TraceTree) -> bool {
    t.spans().iter().any(|parent| {
        let kids: Vec<&SpanRecord> = t
            .spans()
            .iter()
            .filter(|s| s.parent_id == parent.span_id && s.name == "rpc:replica")
            .collect();
        kids.len() >= 2 && kids.iter().all(|s| s.start_nanos == kids[0].start_nanos)
    })
}

fn main() {
    let json_only = std::env::args().any(|a| a == "--json");

    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = REPLICAS;
    let c = build_cluster(cfg);
    let m = mount(&c);
    m.mkdir_p("/repl/data").expect("mkdir");
    m.mkdir_p(WALK_DIR).expect("mkdir walk");
    m.write_file(&format!("{WALK_DIR}/leaf"), b"payload")
        .expect("seed walk file");
    collect_spans(&c); // discard setup noise

    let clock = c.net.clock();
    let client = c.nodes[0].addr().0;
    let tracer_root = |name: &str, f: &mut dyn FnMut()| {
        c.net.obs().tracer.root(name, client, || clock.now().0, f);
    };

    // Workload 1: K-replicated writes — the fig-5/fanout hot path.
    for i in 0..WRITE_OPS {
        let path = format!("/repl/data/f{i}.bin");
        tracer_root("write:replicated", &mut || {
            m.write_file(&path, &[i as u8; 4096]).expect("write");
        });
    }

    // Workload 2: cold deep-path resolution (§4.4 failover state): the
    // gateway holds handles but no cached locations.
    c.nodes[0].flush_caches();
    tracer_root("read:deep-cold", &mut || {
        assert_eq!(
            m.read_file(&format!("{WALK_DIR}/leaf")).expect("cold read"),
            b"payload"
        );
    });

    let traces = build_traces(collect_spans(&c));
    assert_eq!(
        traces.len(),
        WRITE_OPS + 1,
        "expected one trace per traced operation"
    );
    for t in &traces {
        let accounted: u64 = t.critical_path().iter().map(|(_, n)| n).sum();
        assert_eq!(
            accounted,
            t.total_nanos(),
            "critical path must account for the whole root span"
        );
    }
    assert!(
        traces
            .iter()
            .filter(|t| t.root_span().name == "write:replicated")
            .all(has_parallel_fanout),
        "replicated writes should fan out to parallel replica RPCs"
    );

    let json = report_json(&traces);
    std::fs::write("BENCH_trace.json", format!("{json}\n")).expect("write BENCH_trace.json");

    if json_only {
        println!("{json}");
        return;
    }

    println!("==== causal trace report ====");
    println!(
        "cluster: {NODES} nodes, K={REPLICAS}; {} traced ops",
        traces.len()
    );
    println!();
    println!("folded stacks (span path -> self nanos):");
    print!("{}", folded_stacks(&traces));
    println!();
    println!("{json}");
    println!("wrote BENCH_trace.json");
}
