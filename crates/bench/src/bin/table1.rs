//! Regenerates Table 1: Modified Andrew Benchmark execution times for
//! unmodified NFS and for Kosha at 1, 2, 4, and 8 nodes (distribution
//! level 1, single stored instance).

fn main() {
    let t = kosha_sim::experiments::Table1::run(false);
    println!("{}", t.render());
    println!(
        "Paper reference: 4.1% fixed overhead, +1.5% additional from 1 to 8\n\
         nodes (5.6% total at 8 nodes); growth saturates with (N-1)/N."
    );
}
