//! Churn survival bench (`BENCH_churn.json`): a live 1k-node Kosha
//! cluster replayed through the synthetic availability trace's
//! correlated-failure window (the paper's hour-615 spike) while a
//! seeded mutation workload runs, with the consistency observatory
//! sampled on a fixed cadence.
//!
//! What it proves:
//!
//! * **Survival under churn** — acked mutations are read back after the
//!   run and classified survived/lost against the acked-write history;
//!   write-behind windows dropped with their primary are the loss
//!   mechanism the paper's model cannot see.
//! * **Divergence is bounded and repairable** — the audit series peaks
//!   during the spike and the final repair pass (recover + maintain +
//!   flush + settle) returns `objects_divergent` to a steady floor,
//!   with its RPC/bandwidth cost bracketed by the transport counters.
//!
//! Every figure derives from virtual time, seeded randomness, and
//! deterministic counters, so double runs are byte-identical — the CI
//! `scale-smoke` gate diffs exactly that.

use kosha_sim::{run_churn, ChurnParams};
use std::time::Duration;

fn main() {
    let json_only = std::env::args().any(|a| a == "--json");

    let params = ChurnParams {
        nodes: 1_000,
        start_hour: 600,
        hours: 24,
        hour_virtual: Duration::from_millis(40),
        dirs: 12,
        files_per_dir: 4,
        writes_per_hour: 24,
        audit_every_hours: 4,
        purge_every_nth_recovery: 4,
        replicas: 2,
        seed: 7,
    };
    // lint: allow(L002) wall clock feeds the stdout timing line only, never the JSON
    let wall_start = std::time::Instant::now();
    let report = run_churn(&params);
    let wall = wall_start.elapsed();

    // The gate's substance: churn really happened, mutations were
    // acked under it, the accounting is closed, and repair converged.
    assert_eq!(
        report.mutations_survived + report.mutations_lost,
        report.mutations_acked,
        "unclassified mutations"
    );
    assert!(report.mutations_acked > 0, "no mutations acked under churn");
    assert!(
        report.windows.iter().any(|w| w.up_nodes < report.nodes),
        "trace window produced no churn"
    );
    assert!(report.repair_rpc_calls > 0, "repair phase issued no RPCs");
    assert_eq!(
        report.final_objects_divergent, 0,
        "repair did not converge: {} objects still divergent",
        report.final_objects_divergent
    );
    assert_eq!(
        report.final_over_replicated, 0,
        "replica-slot GC left {} stale copies",
        report.final_over_replicated
    );

    let json = report.to_json();
    std::fs::write("BENCH_churn.json", format!("{json}\n")).expect("write BENCH_churn.json");

    if json_only {
        println!("{json}");
        return;
    }
    print!("{}", report.render());
    println!(
        "ran {} virtual hours in {:.1}s wall",
        report.hours,
        wall.as_secs_f64()
    );
    println!("\nwrote BENCH_churn.json");
}
