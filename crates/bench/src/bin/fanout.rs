//! Deterministic report on the two parallel-RPC hot paths: concurrent
//! replica propagation (`Network::call_many`) and compound path
//! resolution (the LOOKUPPATH procedure).
//!
//! Replication is timed twice on identical clusters — once through a
//! wrapper that strips the transport's `call_many` override back to the
//! serial default, once on the real `SimNetwork` whose virtual clock
//! charges overlapping calls as their `max` — so the speedup of the
//! fan-out is visible in virtual time. Resolution is counted twice via
//! the `compound_lookup` config knob, comparing NFS RPC totals for a
//! cold deep-path walk. Everything runs on the virtual clock with seeded
//! ids, so two runs emit byte-identical output; the JSON summary is also
//! written to `BENCH_fanout.json` for CI's determinism check.

use kosha::{KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_rpc::{
    Clock, LatencyModel, Network, NodeAddr, RpcError, RpcRequest, RpcResponse, SimNetwork,
};
use std::sync::Arc;

const NODES: usize = 8;
const REPLICAS: usize = 3;
const WRITE_OPS: usize = 12;

/// `SimNetwork` with its `call_many` override stripped: delegates every
/// single call but inherits the trait's serial default, so fan-outs are
/// charged as the *sum* of their per-call latencies. This is the
/// pre-`call_many` behavior the replication numbers are measured against.
struct SerialNet(Arc<SimNetwork>);

impl Network for SerialNet {
    fn call(&self, from: NodeAddr, to: NodeAddr, req: RpcRequest) -> Result<RpcResponse, RpcError> {
        self.0.call(from, to, req)
    }
    fn clock(&self) -> Arc<dyn Clock> {
        self.0.clock()
    }
    fn is_up(&self, addr: NodeAddr) -> bool {
        self.0.is_up(addr)
    }
}

struct Cluster {
    sim: Arc<SimNetwork>,
    net: Arc<dyn Network>,
    nodes: Vec<Arc<KoshaNode>>,
}

fn build_cluster(serial: bool, cfg: KoshaConfig) -> Cluster {
    let sim = SimNetwork::new(LatencyModel::default());
    let net: Arc<dyn Network> = if serial {
        Arc::new(SerialNet(Arc::clone(&sim)))
    } else {
        Arc::clone(&sim) as Arc<dyn Network>
    };
    let mut nodes = Vec::new();
    for i in 0..NODES {
        let id = node_id_from_seed(&format!("kosha-host-{i}"));
        let (node, mux) = KoshaNode::build(cfg.clone(), id, NodeAddr(i as u64), Arc::clone(&net));
        sim.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
            .expect("join");
        nodes.push(node);
    }
    Cluster { sim, net, nodes }
}

fn mount(c: &Cluster) -> KoshaMount {
    KoshaMount::new(Arc::clone(&c.net), c.nodes[0].addr(), c.nodes[0].addr()).expect("mount")
}

/// Virtual nanoseconds spent propagating `WRITE_OPS` replicated
/// mutations at K = `REPLICAS`, plus the replica-service RPC count.
fn replication_run(serial: bool) -> (u64, u64) {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = REPLICAS;
    let c = build_cluster(serial, cfg);
    let m = mount(&c);
    m.mkdir_p("/repl/data").expect("mkdir");

    let clock = c.net.clock();
    let t0 = clock.now();
    for i in 0..WRITE_OPS {
        m.write_file(&format!("/repl/data/f{i}.bin"), &[i as u8; 2048])
            .expect("write");
    }
    let elapsed = clock.now().since_nanos(t0);
    let replica_rpcs = c
        .sim
        .obs()
        .registry
        .counter("rpc_calls_total{service=\"replica\"}")
        .get();
    (elapsed, replica_rpcs)
}

const WALK_DIR: &str = "/walk/a/b/c/d/e/f/g";
const WALK_DEPTH: u64 = 9;

/// NFS RPCs issued re-resolving a deep path on a cold resolver, with
/// the compound LOOKUPPATH walk on or off.
///
/// The mount walks component-by-component either way (loopback NFS
/// semantics), warming the gateway's directory cache incrementally — so
/// the first traversal can't show the compound win. The interesting
/// case is §4.4's: the gateway holds virtual handles with full paths
/// but no cached locations (failover, stale-handle flush) and must
/// re-resolve a deep path in one go. `flush_caches` reproduces exactly
/// that state, and the re-read through the mount's cached handles then
/// costs one LOOKUPPATH per *server* instead of one LOOKUP per
/// component.
fn resolution_run(compound: bool) -> u64 {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 0;
    cfg.compound_lookup = compound;
    let c = build_cluster(false, cfg);
    let m = mount(&c);
    m.mkdir_p(WALK_DIR).expect("mkdir");
    m.write_file(&format!("{WALK_DIR}/leaf"), b"payload")
        .expect("write");
    assert_eq!(
        m.read_file(&format!("{WALK_DIR}/leaf")).expect("warm read"),
        b"payload"
    );

    c.nodes[0].flush_caches();
    let counter = c
        .sim
        .obs()
        .registry
        .counter("rpc_calls_total{service=\"nfs\"}");
    let before = counter.get();
    assert_eq!(
        m.read_file(&format!("{WALK_DIR}/leaf")).expect("cold read"),
        b"payload"
    );
    counter.get() - before
}

fn main() {
    let json_only = std::env::args().any(|a| a == "--json");

    let (serial_nanos, serial_rpcs) = replication_run(true);
    let (fanout_nanos, fanout_rpcs) = replication_run(false);
    let per_component_rpcs = resolution_run(false);
    let compound_rpcs = resolution_run(true);

    let speedup_x100 = serial_nanos * 100 / fanout_nanos.max(1);
    let json = format!(
        concat!(
            "{{\n",
            "  \"replication\": {{\n",
            "    \"k\": {},\n",
            "    \"ops\": {},\n",
            "    \"serial_total_nanos\": {},\n",
            "    \"fanout_total_nanos\": {},\n",
            "    \"serial_per_op_nanos\": {},\n",
            "    \"fanout_per_op_nanos\": {},\n",
            "    \"serial_replica_rpcs\": {},\n",
            "    \"fanout_replica_rpcs\": {},\n",
            "    \"speedup_x100\": {}\n",
            "  }},\n",
            "  \"resolution\": {{\n",
            "    \"depth\": {},\n",
            "    \"per_component_nfs_rpcs\": {},\n",
            "    \"compound_nfs_rpcs\": {}\n",
            "  }}\n",
            "}}"
        ),
        REPLICAS,
        WRITE_OPS,
        serial_nanos,
        fanout_nanos,
        serial_nanos / WRITE_OPS as u64,
        fanout_nanos / WRITE_OPS as u64,
        serial_rpcs,
        fanout_rpcs,
        speedup_x100,
        WALK_DEPTH,
        per_component_rpcs,
        compound_rpcs,
    );
    std::fs::write("BENCH_fanout.json", format!("{json}\n")).expect("write BENCH_fanout.json");

    if json_only {
        println!("{json}");
        return;
    }

    println!("==== parallel RPC fan-out report ====");
    println!("replication (K={REPLICAS}, {WRITE_OPS} replicated writes, virtual time):");
    println!(
        "  serial mirror:   {serial_nanos} ns total, {} ns/op, {serial_rpcs} replica RPCs",
        serial_nanos / WRITE_OPS as u64
    );
    println!(
        "  call_many:       {fanout_nanos} ns total, {} ns/op, {fanout_rpcs} replica RPCs",
        fanout_nanos / WRITE_OPS as u64
    );
    println!(
        "  speedup:         {}.{:02}x",
        speedup_x100 / 100,
        speedup_x100 % 100
    );
    println!("resolution (cold depth-{WALK_DEPTH} walk, NFS RPC count):");
    println!("  per-component:   {per_component_rpcs} RPCs");
    println!("  compound lookup: {compound_rpcs} RPCs");
    println!("wrote BENCH_fanout.json");
    assert!(
        speedup_x100 >= 200,
        "replica fan-out speedup below 2x: {speedup_x100}/100"
    );
    assert!(
        compound_rpcs < per_component_rpcs,
        "compound lookup did not reduce resolution RPCs"
    );
}
