//! Scheduler-runtime scale bench (`BENCH_sched.json`): the event-heap
//! SimNetwork under a message-storm + pump-tick workload at 1k and 10k
//! nodes, plus a ThreadedNetwork phase proving the reactor's worker
//! pool stays fixed while thousands of `call_async` RPCs complete.
//!
//! What it proves:
//!
//! * **O(log n) dispatch** — the heap grows 10x between the two sim
//!   scales (one armed recurring timer per node) but the comparisons
//!   charged per event grow only by ~log(10k)/log(1k). A linear
//!   scan-for-minimum would grow 10x. Comparisons are counted inside
//!   `Ord for Entry` ([`kosha_rpc::heap_comparisons`]), so the evidence
//!   is exact and deterministic, not a wall-clock proxy.
//! * **Thread-count collapse** — attaching nodes to the reactor spawns
//!   zero threads; the pool is sized by the host CPU, not the cluster.
//!
//! Every figure in the JSON derives from virtual time, event counts,
//! and comparison counters, so double runs are byte-identical (the CI
//! `scale-smoke` gate). Wall-clock throughput is printed to stdout
//! only and never serialized.

use kosha_rpc::{
    heap_comparisons, Clock, LatencyModel, Network, NodeAddr, PumpHook, RpcError, RpcHandler,
    RpcRequest, RpcResponse, ServiceId, ServiceMux, SimNetwork, ThreadedNetwork, WireRead,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Echoes the request body back — the cheapest possible handler, so the
/// bench measures the runtime, not application work.
struct Echo;

impl RpcHandler for Echo {
    fn handle(&self, _from: NodeAddr, body: &[u8]) -> Result<RpcResponse, RpcError> {
        let v = u32::decode(body).map_err(RpcError::Decode)?;
        Ok(RpcResponse::new(&v))
    }
}

/// Seeded LCG (atomic so hooks stay `Sync`; the simulation drives them
/// from one thread) — the storm's traffic pattern is identical on every
/// run.
struct Lcg(AtomicU64);

impl Lcg {
    fn next(&self) -> u64 {
        let v = self
            .0
            .load(Ordering::Relaxed)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0.store(v, Ordering::Relaxed);
        v >> 16
    }
}

/// Passive per-node tick hook: its only job is to keep one recurring
/// timer per node armed in the heap (depth ~= cluster size) and count
/// its fires.
struct TickHook {
    fires: Arc<AtomicU64>,
}

impl PumpHook for TickHook {
    fn pump(&self) {
        self.fires.fetch_add(1, Ordering::Relaxed);
    }
}

/// Storm hook: on each fire, issues a couple of echo RPCs between
/// LCG-chosen nodes. Kept to a small fixed population so nested pump
/// firing stays shallow while the tick timers hold the heap deep.
struct StormHook {
    net: Arc<SimNetwork>,
    nodes: u64,
    rng: Lcg,
    calls: Arc<AtomicU64>,
}

impl PumpHook for StormHook {
    // lint: allow(L005) bench storm driver: issuing RPCs from the pump IS the workload being measured
    fn pump(&self) {
        for _ in 0..STORM_CALLS_PER_FIRE {
            let (from, to) = (self.rng.next() % self.nodes, self.rng.next() % self.nodes);
            let seq = self.calls.fetch_add(1, Ordering::Relaxed);
            let req = RpcRequest::new(ServiceId::Nfs, &(seq as u32));
            let _ = self.net.call(NodeAddr(from), NodeAddr(to), req);
        }
    }
}

const STORM_HOOKS: usize = 64;
const STORM_CALLS_PER_FIRE: usize = 2;
const STORM_INTERVAL_MS: u64 = 2;
const TICK_INTERVAL_SPREAD_MS: u64 = 16;
const SIM_HORIZON_MS: u64 = 100;
const THREADED_NODES: usize = 512;
const THREADED_ASYNC_CALLS: usize = 2000;

/// Deterministic results of one sim-phase run.
struct SimPhase {
    nodes: usize,
    events_total: u64,
    comparisons: u64,
    /// Comparisons charged per event, x100 (integer fixed-point so the
    /// JSON never carries float formatting).
    cmp_per_event_x100: u64,
    heap_hwm: u64,
    dispatch_p99_nanos: u64,
    virtual_elapsed_nanos: u64,
    storm_calls: u64,
    pump_fires: u64,
    /// Events per *virtual* second — throughput in modeled time, which
    /// is deterministic (wall-clock throughput goes to stdout only).
    events_per_virtual_sec: u64,
}

fn sim_phase(nodes: usize) -> SimPhase {
    // Zero-cost latency model: storm calls must not advance the virtual
    // clock, or they would race it past every armed tick's rearm
    // deadline and the catch-up fires would never drain. With calls
    // instantaneous, ticks fire exactly on cadence and the workload is
    // a closed, exact function of the horizon.
    let net = SimNetwork::new(LatencyModel::zero());
    for i in 0..nodes {
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Nfs, Arc::new(Echo));
        net.attach(NodeAddr(i as u64), mux);
    }

    // One recurring timer per node, intervals staggered across
    // 1..=16 ms so fires spread instead of thundering.
    let tick_fires = Arc::new(AtomicU64::new(0));
    let mut hooks: Vec<Arc<dyn PumpHook>> = Vec::with_capacity(nodes + STORM_HOOKS);
    for i in 0..nodes {
        let hook: Arc<dyn PumpHook> = Arc::new(TickHook {
            fires: Arc::clone(&tick_fires),
        });
        net.schedule_pump(
            Arc::downgrade(&hook),
            Duration::from_millis(1 + (i as u64) % TICK_INTERVAL_SPREAD_MS),
        );
        hooks.push(hook);
    }

    // A small storm population drives echo RPCs through the same heap.
    let storm_calls = Arc::new(AtomicU64::new(0));
    for i in 0..STORM_HOOKS {
        let hook: Arc<dyn PumpHook> = Arc::new(StormHook {
            net: Arc::clone(&net),
            nodes: nodes as u64,
            rng: Lcg(AtomicU64::new(0x9E3779B97F4A7C15 ^ (i as u64))),
            calls: Arc::clone(&storm_calls),
        });
        net.schedule_pump(
            Arc::downgrade(&hook),
            Duration::from_millis(STORM_INTERVAL_MS),
        );
        hooks.push(hook);
    }

    let obs = net.obs();
    let cmp_before = heap_comparisons();
    let start = net.virtual_clock().now();
    // lint: allow(L002) wall clock feeds the stdout throughput line only, never the JSON
    let wall_start = std::time::Instant::now();
    net.run_for(Duration::from_millis(SIM_HORIZON_MS));
    let wall = wall_start.elapsed();
    let virtual_elapsed = net.virtual_clock().now().0 - start.0;

    let events_total = obs.registry.counter("kosha_sched_events_total").get();
    let comparisons = heap_comparisons() - cmp_before;
    let p99 = obs
        .registry
        .histogram("kosha_sched_dispatch_latency_nanos")
        .quantile(0.99);
    let hwm = obs.registry.gauge("kosha_sched_heap_depth_hwm").get() as u64;
    let wall_events_per_sec = if wall.as_nanos() == 0 {
        0
    } else {
        (u128::from(events_total) * 1_000_000_000 / wall.as_nanos()) as u64
    };
    println!(
        "sim {nodes} nodes: {events_total} events in {:.1} ms wall ({wall_events_per_sec} events/s wall)",
        wall.as_secs_f64() * 1e3,
    );

    SimPhase {
        nodes,
        events_total,
        comparisons,
        cmp_per_event_x100: (comparisons * 100).checked_div(events_total).unwrap_or(0),
        heap_hwm: hwm,
        dispatch_p99_nanos: p99,
        virtual_elapsed_nanos: virtual_elapsed,
        storm_calls: storm_calls.load(Ordering::Relaxed),
        pump_fires: tick_fires.load(Ordering::Relaxed),
        events_per_virtual_sec: if virtual_elapsed == 0 {
            0
        } else {
            (u128::from(events_total) * 1_000_000_000 / u128::from(virtual_elapsed)) as u64
        },
    }
}

/// Deterministic results of the reactor phase.
struct ThreadedPhase {
    attached_nodes: usize,
    async_calls: usize,
    worker_threads: usize,
    cpu_cores: usize,
    threads_spawned_total: u64,
    /// True when attach + the whole async storm spawned zero threads
    /// beyond the boot-time pool.
    pool_fixed: bool,
    workers_le_2x_cores: bool,
}

fn threaded_phase() -> ThreadedPhase {
    let net = ThreadedNetwork::new(Duration::from_secs(10));
    let spawned_at_boot = net.threads_spawned();
    for i in 0..THREADED_NODES {
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Nfs, Arc::new(Echo));
        net.attach(NodeAddr(i as u64), mux);
    }
    // Issue every call before waiting on any: all of them are in flight
    // against a pool that never grows.
    let completions: Vec<_> = (0..THREADED_ASYNC_CALLS)
        .map(|k| {
            let from = NodeAddr((k % THREADED_NODES) as u64);
            let to = NodeAddr(((k * 7 + 1) % THREADED_NODES) as u64);
            net.call_async(from, to, RpcRequest::new(ServiceId::Nfs, &(k as u32)))
        })
        .collect();
    let ok = completions
        .into_iter()
        .map(kosha_rpc::CallCompletion::wait)
        .filter(Result::is_ok)
        .count();
    assert_eq!(ok, THREADED_ASYNC_CALLS, "async echo storm had failures");

    let cpu_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let spawned_total = net.threads_spawned();
    ThreadedPhase {
        attached_nodes: THREADED_NODES,
        async_calls: THREADED_ASYNC_CALLS,
        worker_threads: net.worker_threads(),
        cpu_cores,
        threads_spawned_total: spawned_total,
        pool_fixed: spawned_total == spawned_at_boot,
        workers_le_2x_cores: net.worker_threads() <= 2 * cpu_cores.max(2),
    }
}

fn sim_json(p: &SimPhase) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"nodes\": {},\n",
            "      \"events_total\": {},\n",
            "      \"heap_comparisons\": {},\n",
            "      \"cmp_per_event_x100\": {},\n",
            "      \"heap_depth_hwm\": {},\n",
            "      \"dispatch_p99_nanos\": {},\n",
            "      \"virtual_elapsed_nanos\": {},\n",
            "      \"events_per_virtual_sec\": {},\n",
            "      \"storm_calls\": {},\n",
            "      \"pump_fires\": {}\n",
            "    }}"
        ),
        p.nodes,
        p.events_total,
        p.comparisons,
        p.cmp_per_event_x100,
        p.heap_hwm,
        p.dispatch_p99_nanos,
        p.virtual_elapsed_nanos,
        p.events_per_virtual_sec,
        p.storm_calls,
        p.pump_fires,
    )
}

fn main() {
    let json_only = std::env::args().any(|a| a == "--json");

    let small = sim_phase(1_000);
    let large = sim_phase(10_000);
    let threaded = threaded_phase();

    // O(log n) evidence: heap depth grew ~10x, comparisons-per-event by
    // ~log(10k)/log(1k) ~= 1.33x. Linear dispatch would be ~10x (1000
    // in x100 fixed-point).
    let cmp_ratio_x100 = (large.cmp_per_event_x100 * 100)
        .checked_div(small.cmp_per_event_x100)
        .unwrap_or(0);
    let hwm_ratio_x100 = (large.heap_hwm * 100)
        .checked_div(small.heap_hwm)
        .unwrap_or(0);

    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": {{\n",
            "    \"sim_horizon_ms\": {},\n",
            "    \"tick_interval_spread_ms\": {},\n",
            "    \"storm_hooks\": {},\n",
            "    \"storm_calls_per_fire\": {}\n",
            "  }},\n",
            "  \"sim\": [\n",
            "{},\n",
            "{}\n",
            "  ],\n",
            "  \"scaling\": {{\n",
            "    \"heap_hwm_ratio_x100\": {},\n",
            "    \"cmp_per_event_ratio_x100\": {},\n",
            "    \"linear_dispatch_would_be_x100\": 1000\n",
            "  }},\n",
            "  \"threaded\": {{\n",
            "    \"attached_nodes\": {},\n",
            "    \"async_calls\": {},\n",
            "    \"worker_threads\": {},\n",
            "    \"cpu_cores\": {},\n",
            "    \"threads_spawned_total\": {},\n",
            "    \"pool_fixed\": {},\n",
            "    \"workers_le_2x_cores\": {}\n",
            "  }}\n",
            "}}"
        ),
        SIM_HORIZON_MS,
        TICK_INTERVAL_SPREAD_MS,
        STORM_HOOKS,
        STORM_CALLS_PER_FIRE,
        sim_json(&small),
        sim_json(&large),
        hwm_ratio_x100,
        cmp_ratio_x100,
        threaded.attached_nodes,
        threaded.async_calls,
        threaded.worker_threads,
        threaded.cpu_cores,
        threaded.threads_spawned_total,
        threaded.pool_fixed,
        threaded.workers_le_2x_cores,
    );
    // lint: allow(L003) bench binary's own output file, not a server handler
    std::fs::write("BENCH_sched.json", format!("{json}\n")).expect("write BENCH_sched.json");

    if json_only {
        println!("{json}");
        return;
    }

    println!();
    println!("scheduler runtime — event heap at scale");
    println!(
        "  {:>7} nodes: {:>8} events, {:>5.2} cmp/event, heap hwm {:>6}, p99 dispatch {:.1} ms",
        small.nodes,
        small.events_total,
        small.cmp_per_event_x100 as f64 / 100.0,
        small.heap_hwm,
        small.dispatch_p99_nanos as f64 / 1e6
    );
    println!(
        "  {:>7} nodes: {:>8} events, {:>5.2} cmp/event, heap hwm {:>6}, p99 dispatch {:.1} ms",
        large.nodes,
        large.events_total,
        large.cmp_per_event_x100 as f64 / 100.0,
        large.heap_hwm,
        large.dispatch_p99_nanos as f64 / 1e6
    );
    println!(
        "  heap grew {:.1}x, comparisons/event grew {:.2}x (linear would be ~10x) => O(log n)",
        hwm_ratio_x100 as f64 / 100.0,
        cmp_ratio_x100 as f64 / 100.0,
    );
    println!();
    println!("reactor — thread-count collapse");
    println!(
        "  {} nodes attached, {} async calls completed on {} workers ({} cores, {} threads ever spawned, pool_fixed={})",
        threaded.attached_nodes,
        threaded.async_calls,
        threaded.worker_threads,
        threaded.cpu_cores,
        threaded.threads_spawned_total,
        threaded.pool_fixed,
    );
    println!("\nwrote BENCH_sched.json");
}
