//! Regenerates Figure 5: mean and standard deviation of the per-node
//! share of file count and bytes across 16 nodes, as the distribution
//! level increases from 1 to 10, against the per-file-hashing bound.

use kosha_sim::experiments::Fig5;

fn main() {
    // Paper: full 221 K-file trace, 50 nodeId assignments. We default to
    // a quarter-scale trace and 10 assignments; pass `--full` for the
    // paper-size run.
    let full = std::env::args().any(|a| a == "--full");
    let (runs, scale) = if full { (50, 1.0) } else { (10, 0.25) };
    let f = Fig5::run(1..=10, runs, scale);
    println!("{}", f.render());
    println!(
        "Paper reference: std shrinks toward the per-file bound; level >= 4 is\n\
         \"comparable load balancing to that of individually hashing all files\"."
    );
}
