//! Deterministic report on write-behind replication: per-mutation
//! latency with the K-replica mirror on vs off the client's critical
//! path, replica RPC totals (coalescing must ship *fewer* ops than
//! synchronous mirroring), and the coalesce ratio itself.
//!
//! Two identical clusters run the same sequential-write workload — one
//! with `ReplicationMode::Sync` (every mutation fans out to K replicas
//! before the client's WRITE returns), one with
//! `ReplicationMode::WriteBehind` (mutations enqueue on per-target
//! queues and ship as coalesced batches at the closing COMMIT barrier).
//! Everything runs on the virtual clock with seeded ids, so two runs
//! emit byte-identical output; the JSON summary is also written to
//! `BENCH_writeback.json` for CI's determinism check.

use kosha::{KoshaConfig, KoshaMount, KoshaNode, ReplicationMode};
use kosha_id::node_id_from_seed;
use kosha_nfs::NfsClient;
use kosha_obs::trace::build_traces;
use kosha_obs::SpanRecord;
use kosha_rpc::{LatencyModel, Network, NodeAddr, ServiceId, SimNetwork};
use std::sync::Arc;
use std::time::Duration;

const NODES: usize = 8;
const REPLICAS: usize = 3;
const WRITE_OPS: usize = 64;
const WRITE_BYTES: usize = 256;
const FILE: &str = "/wb/data/stream.bin";

struct Cluster {
    net: Arc<SimNetwork>,
    nodes: Vec<Arc<KoshaNode>>,
}

fn build_cluster(cfg: KoshaConfig) -> Cluster {
    let net = SimNetwork::new(LatencyModel::default());
    let mut nodes = Vec::new();
    for i in 0..NODES {
        let id = node_id_from_seed(&format!("kosha-host-{i}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(i as u64),
            net.clone() as Arc<dyn Network>,
        );
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
            .expect("join");
        nodes.push(node);
    }
    Cluster { net, nodes }
}

fn mount(c: &Cluster, node: usize) -> KoshaMount {
    KoshaMount::new(
        c.net.clone() as Arc<dyn Network>,
        c.nodes[node].addr(),
        c.nodes[node].addr(),
    )
    .expect("mount")
}

fn collect_spans(c: &Cluster) -> Vec<SpanRecord> {
    let mut spans = c.net.obs().tracer.take();
    for n in &c.nodes {
        spans.extend(n.obs().tracer.take());
    }
    spans
}

struct RunResult {
    p50_write_nanos: u64,
    total_nanos: u64,
    replica_rpcs: u64,
    enqueued: u64,
    flushed_ops: u64,
    coalesced_ops: u64,
    mirror_on_critical_path: bool,
}

fn run(mode: ReplicationMode) -> RunResult {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = REPLICAS;
    cfg.replication_mode = mode;
    let c = build_cluster(cfg);
    mount(&c, 0).mkdir_p("/wb/data").expect("mkdir");
    // Run the workload on the anchor's primary — the machine whose user
    // owns the data, the paper's common case — so the measured WRITE is
    // a loopback apply plus (under sync) the K-replica mirror.
    let primary = c
        .nodes
        .iter()
        .position(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/wb"))
        .expect("anchor hosted");
    let m = mount(&c, primary);
    m.write_file(FILE, b"").expect("create");
    collect_spans(&c); // discard setup noise

    let clock = c.net.clock();
    let replica_counter = c
        .net
        .obs()
        .registry
        .counter("rpc_calls_total{service=\"replica\"}");
    let rpcs_before = replica_counter.get();

    // Sequential appends against a pre-resolved handle — each measured
    // op is exactly one WRITE RPC to the koshad, per-op latency on the
    // virtual clock.
    let nfs = NfsClient::with_service(
        c.net.clone() as Arc<dyn Network>,
        c.nodes[primary].addr(),
        ServiceId::KoshaFs,
    );
    let koshad = c.nodes[primary].addr();
    let (fh, _) = m.stat(FILE).expect("stat");
    let mut lat = Vec::with_capacity(WRITE_OPS);
    let t0 = clock.now();
    for i in 0..WRITE_OPS {
        let before = clock.now();
        nfs.write(
            koshad,
            fh,
            (i * WRITE_BYTES) as u64,
            &[i as u8; WRITE_BYTES],
        )
        .expect("write");
        lat.push(clock.now().since_nanos(before));
    }
    // Close the durability window; under write-behind this is the COMMIT
    // barrier that flushes the coalesced queues.
    m.commit(FILE).expect("commit");
    let total_nanos = clock.now().since_nanos(t0);

    // One more traced append to see what the client's WRITE waits on.
    let client = c.nodes[primary].addr().0;
    c.net.obs().tracer.root(
        "write:traced",
        client,
        || clock.now().0,
        || {
            m.write_at(FILE, (WRITE_OPS * WRITE_BYTES) as u64, &[0xAB; WRITE_BYTES])
                .expect("traced write");
        },
    );
    let traces = build_traces(collect_spans(&c));
    let mirror_on_critical_path = traces
        .iter()
        .filter(|t| t.root_span().name == "write:traced")
        .any(|t| t.critical_path().iter().any(|(n, _)| n == "kosha:mirror"));
    m.commit(FILE).expect("final commit");

    lat.sort_unstable();
    let (mut enqueued, mut flushed_ops, mut coalesced_ops) = (0, 0, 0);
    for n in &c.nodes {
        let s = n.stats();
        enqueued += s.writeback_enqueued;
        flushed_ops += s.writeback_flushed_ops;
        coalesced_ops += s.writeback_coalesced_ops;
    }
    RunResult {
        p50_write_nanos: lat[WRITE_OPS / 2],
        total_nanos,
        replica_rpcs: replica_counter.get() - rpcs_before,
        enqueued,
        flushed_ops,
        coalesced_ops,
        mirror_on_critical_path,
    }
}

fn main() {
    let json_only = std::env::args().any(|a| a == "--json");

    let sync = run(ReplicationMode::Sync);
    let wb = run(ReplicationMode::WriteBehind {
        queue_ops: 256,
        flush_interval: Duration::from_millis(5),
    });

    let speedup_x100 = sync.p50_write_nanos * 100 / wb.p50_write_nanos.max(1);
    let coalesce_ratio_x100 = wb.enqueued * 100 / wb.flushed_ops.max(1);
    let json = format!(
        concat!(
            "{{\n",
            "  \"k\": {},\n",
            "  \"ops\": {},\n",
            "  \"write_bytes\": {},\n",
            "  \"sync\": {{\n",
            "    \"p50_write_nanos\": {},\n",
            "    \"total_nanos\": {},\n",
            "    \"replica_rpcs\": {},\n",
            "    \"mirror_on_critical_path\": {}\n",
            "  }},\n",
            "  \"write_behind\": {{\n",
            "    \"p50_write_nanos\": {},\n",
            "    \"total_nanos\": {},\n",
            "    \"replica_rpcs\": {},\n",
            "    \"enqueued_ops\": {},\n",
            "    \"flushed_ops\": {},\n",
            "    \"coalesced_ops\": {},\n",
            "    \"mirror_on_critical_path\": {}\n",
            "  }},\n",
            "  \"p50_speedup_x100\": {},\n",
            "  \"coalesce_ratio_x100\": {}\n",
            "}}"
        ),
        REPLICAS,
        WRITE_OPS,
        WRITE_BYTES,
        sync.p50_write_nanos,
        sync.total_nanos,
        sync.replica_rpcs,
        sync.mirror_on_critical_path,
        wb.p50_write_nanos,
        wb.total_nanos,
        wb.replica_rpcs,
        wb.enqueued,
        wb.flushed_ops,
        wb.coalesced_ops,
        wb.mirror_on_critical_path,
        speedup_x100,
        coalesce_ratio_x100,
    );
    std::fs::write("BENCH_writeback.json", format!("{json}\n"))
        .expect("write BENCH_writeback.json");

    if json_only {
        println!("{json}");
    } else {
        println!("==== write-behind replication report ====");
        println!(
            "cluster: {NODES} nodes, K={REPLICAS}; {WRITE_OPS} sequential {WRITE_BYTES}B writes + COMMIT (virtual time)"
        );
        println!(
            "  sync:         p50 {} ns/write, {} ns total, {} replica RPCs, mirror on critical path: {}",
            sync.p50_write_nanos, sync.total_nanos, sync.replica_rpcs, sync.mirror_on_critical_path
        );
        println!(
            "  write-behind: p50 {} ns/write, {} ns total, {} replica RPCs, mirror on critical path: {}",
            wb.p50_write_nanos, wb.total_nanos, wb.replica_rpcs, wb.mirror_on_critical_path
        );
        println!(
            "  p50 speedup:  {}.{:02}x",
            speedup_x100 / 100,
            speedup_x100 % 100
        );
        println!(
            "  coalescing:   {} enqueued -> {} shipped ({} merged away), ratio {}.{:02}",
            wb.enqueued,
            wb.flushed_ops,
            wb.coalesced_ops,
            coalesce_ratio_x100 / 100,
            coalesce_ratio_x100 % 100
        );
        println!("wrote BENCH_writeback.json");
    }

    assert!(
        speedup_x100 >= 200,
        "write-behind p50 speedup below 2x: {speedup_x100}/100"
    );
    assert!(
        coalesce_ratio_x100 > 100,
        "coalescing shipped as many ops as were enqueued: {coalesce_ratio_x100}/100"
    );
    assert!(
        wb.replica_rpcs <= sync.replica_rpcs,
        "write-behind issued more replica RPCs ({}) than sync ({})",
        wb.replica_rpcs,
        sync.replica_rpcs
    );
    assert!(
        sync.mirror_on_critical_path,
        "sync mode should mirror on the WRITE critical path"
    );
    assert!(
        !wb.mirror_on_critical_path,
        "write-behind left the mirror on the WRITE critical path"
    );
}
