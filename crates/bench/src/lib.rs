//! Benchmark harness for the Kosha reproduction (see `src/bin/` for the
//! per-table/figure binaries and `benches/` for Criterion benches).
