//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Replication factor K** — write amplification on the full stack:
//!   every mutation fans out to K replicas (§4.2), so write cost should
//!   grow roughly linearly in K while reads stay flat.
//! * **Distribution granularity** — directory-level placement needs one
//!   hash per *directory*; per-file placement hashes every file. The
//!   paper's central claim is that directory distribution costs less
//!   while balancing almost as well (Fig 5).
//! * **Leaf-set size** — smaller leaf sets mean cheaper maintenance but
//!   less failure slack; measures route() cost after failures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kosha::KoshaConfig;
use kosha_id::{dir_key, node_id_from_seed};
use kosha_pastry::{PastryConfig, PastryNode};
use kosha_rpc::{LatencyModel, Network, NodeAddr, ServiceId, ServiceMux, SimNetwork};
use kosha_sim::cached_mount::CachedKoshaMount;
use kosha_sim::cluster::{ClusterParams, SimCluster};
use kosha_sim::experiments::{mab_lan, table1_kosha_config};
use kosha_sim::mab::{run_mab, MabParams};
use std::hint::black_box;
use std::sync::Arc;

fn bench_replication_write_amplification(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_replication");
    g.sample_size(10);
    for k in [0usize, 1, 2, 3] {
        g.bench_with_input(BenchmarkId::new("write-k", k), &k, |b, &k| {
            b.iter(|| {
                let mut cfg = KoshaConfig::for_tests();
                cfg.replicas = k;
                cfg.distribution_level = 1;
                let cluster = SimCluster::build(&ClusterParams {
                    nodes: 6,
                    kosha: cfg,
                    latency: LatencyModel::zero(),
                    seed: 42,
                });
                let m = cluster.mount(0);
                m.mkdir_p("/w").unwrap();
                for i in 0..20 {
                    m.write_file(&format!("/w/f{i}"), &[7u8; 2048]).unwrap();
                }
                black_box(())
            })
        });
    }
    g.finish();
}

fn bench_granularity(c: &mut Criterion) {
    let paths: Vec<String> = (0..64)
        .flat_map(|d| (0..16).map(move |f| format!("/dir{d}/file{f}")))
        .collect();
    let mut g = c.benchmark_group("ablation_granularity");
    g.bench_function("hash-per-directory", |b| {
        b.iter(|| {
            // One hash per directory; files reuse the directory's key.
            let mut last_dir = "";
            let mut key = dir_key("/");
            for p in &paths {
                let (dir, _) = p.rsplit_once('/').unwrap();
                if dir != last_dir {
                    key = dir_key(dir.rsplit('/').next().unwrap());
                    last_dir = dir;
                }
                black_box(key);
            }
        })
    });
    g.bench_function("hash-per-file", |b| {
        b.iter(|| {
            for p in &paths {
                black_box(dir_key(p));
            }
        })
    });
    g.finish();
}

fn bench_leafset(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_leafset");
    g.sample_size(10);
    for half in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("route-after-failures", half),
            &half,
            |b, &half| {
                b.iter(|| {
                    let net = SimNetwork::new_zero_latency();
                    let mut nodes = Vec::new();
                    for i in 0..20u64 {
                        let node = PastryNode::new(
                            PastryConfig {
                                leaf_half: half,
                                max_hops: 64,
                                proximity_aware: false,
                            },
                            node_id_from_seed(&format!("ab-{i}")),
                            NodeAddr(i),
                            net.clone() as Arc<dyn Network>,
                        );
                        let mux = Arc::new(ServiceMux::new());
                        mux.register(ServiceId::Pastry, node.clone());
                        net.attach(node.addr(), mux);
                        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
                            .unwrap();
                        nodes.push(node);
                    }
                    for d in [3u64, 7, 11, 15] {
                        net.fail_node(NodeAddr(d));
                    }
                    for n in nodes.iter().filter(|n| n.addr().0 % 4 != 3) {
                        n.maintain();
                    }
                    for k in 0..30u32 {
                        let key = dir_key(&format!("key{k}"));
                        black_box(nodes[0].route(key).unwrap());
                    }
                    // Break the net→mux→node→net reference cycle so each
                    // iteration's ring is actually freed.
                    for n in &nodes {
                        net.detach(n.addr());
                    }
                })
            },
        );
    }
    g.finish();
}

fn bench_read_from_replicas(c: &mut Criterion) {
    // §4.2's future-work optimization: measures the end-to-end cost of
    // round-robined replica reads vs primary-only reads.
    let mut g = c.benchmark_group("ablation_replica_reads");
    g.sample_size(10);
    for enabled in [false, true] {
        let label = if enabled {
            "replica-rr"
        } else {
            "primary-only"
        };
        g.bench_function(label, |b| {
            let mut cfg = KoshaConfig::for_tests();
            cfg.replicas = 2;
            cfg.distribution_level = 1;
            cfg.read_from_replicas = enabled;
            let cluster = SimCluster::build(&ClusterParams {
                nodes: 6,
                kosha: cfg,
                latency: LatencyModel::zero(),
                seed: 77,
            });
            let m = cluster.mount(0);
            m.mkdir_p("/r").unwrap();
            m.write_file("/r/blob", &[3u8; 64 * 1024]).unwrap();
            b.iter(|| {
                for _ in 0..6 {
                    black_box(m.read_file("/r/blob").unwrap());
                }
            })
        });
    }
    g.finish();
}

fn bench_client_cache(c: &mut Criterion) {
    // §4.1.1: Kosha under a caching NFS client. Compares MAB cost with
    // and without attribute/dentry/data caching in front of koshad.
    let mut g = c.benchmark_group("ablation_client_cache");
    g.sample_size(10);
    g.bench_function("uncached-client", |b| {
        b.iter(|| {
            let cluster = SimCluster::build(&ClusterParams {
                nodes: 4,
                kosha: table1_kosha_config(),
                latency: mab_lan(),
                seed: 900,
            });
            let m = cluster.mount(0);
            let clock = cluster.clock();
            clock.reset();
            black_box(run_mab(&MabParams::small(), &m, &clock).unwrap())
        })
    });
    g.bench_function("caching-client", |b| {
        b.iter(|| {
            let cluster = SimCluster::build(&ClusterParams {
                nodes: 4,
                kosha: table1_kosha_config(),
                latency: mab_lan(),
                seed: 900,
            });
            let m = CachedKoshaMount::new(
                cluster.net.clone() as Arc<dyn Network>,
                cluster.nodes[0].addr(),
                cluster.nodes[0].addr(),
                kosha_nfs::CacheConfig::default(),
            )
            .unwrap();
            let clock = cluster.clock();
            clock.reset();
            black_box(run_mab(&MabParams::small(), &m, &clock).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_replication_write_amplification,
    bench_granularity,
    bench_leafset,
    bench_read_from_replicas,
    bench_client_cache
);
criterion_main!(benches);
