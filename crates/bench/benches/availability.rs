//! Criterion bench for Figure 7: replaying the 840-hour availability
//! trace against the placed file system at different replica counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kosha_sim::availability::{simulate_availability, AvailabilityTrace};
use kosha_sim::{AvailabilityParams, FsTrace, TraceParams};
use std::hint::black_box;

fn bench_availability(c: &mut Criterion) {
    let trace = FsTrace::generate(&TraceParams::default().scaled(0.01));
    let params = AvailabilityParams {
        machines: 256,
        hours: 840,
        ..Default::default()
    };
    let avail = AvailabilityTrace::generate(&params);
    let mut g = c.benchmark_group("availability");
    g.sample_size(10);
    for k in [0usize, 1, 3] {
        g.bench_with_input(BenchmarkId::new("replicas", k), &k, |b, &k| {
            b.iter(|| black_box(simulate_availability(&trace, &avail, 3, k, 1)))
        });
    }
    g.bench_function("trace-generation", |b| {
        b.iter(|| black_box(AvailabilityTrace::generate(&params)))
    });
    g.finish();
}

criterion_group!(benches, bench_availability);
criterion_main!(benches);
