//! Criterion bench for Figure 6: insertion under capacity pressure with
//! varying redirection budgets — measures what each extra redirection
//! attempt costs at insert time (the trade-off the paper notes: "each
//! redirection attempt requires hashing of the file name which can
//! hinder the file operation performance").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kosha_sim::placement::{PlacementParams, PlacementSim};
use kosha_sim::{FsTrace, TraceParams};
use std::hint::black_box;

fn bench_redirection(c: &mut Criterion) {
    let trace = FsTrace::generate(&TraceParams::default().scaled(0.02));
    let total = trace.total_bytes();
    let mut g = c.benchmark_group("redirection");
    for attempts in [0usize, 1, 4, 15] {
        g.bench_with_input(
            BenchmarkId::new("attempts", attempts),
            &attempts,
            |b, &a| {
                b.iter(|| {
                    let mut p = PlacementParams::fig6(a, 1);
                    let scale = (total * 4) as f64 / 0.9 / 60_000_000_000.0;
                    for cap in &mut p.capacities {
                        *cap = ((*cap as f64) * scale) as u64;
                    }
                    let mut sim = PlacementSim::new(p);
                    sim.insert_trace(&trace);
                    black_box(sim.sample())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_redirection);
criterion_main!(benches);
