//! Criterion bench for Figure 5: trace placement cost per distribution
//! level, plus the per-file hashing bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kosha_sim::placement::{PlacementParams, PlacementSim};
use kosha_sim::{FsTrace, TraceParams};
use std::hint::black_box;

fn bench_load_balance(c: &mut Criterion) {
    let trace = FsTrace::generate(&TraceParams::default().scaled(0.02));
    let mut g = c.benchmark_group("load_balance");
    for level in [1usize, 4, 10] {
        g.bench_with_input(BenchmarkId::new("dir-level", level), &level, |b, &l| {
            b.iter(|| {
                let mut sim = PlacementSim::new(PlacementParams::fig5(l, 1));
                sim.insert_trace(&trace);
                black_box(sim.balance_stats())
            })
        });
    }
    g.bench_function("per-file-bound", |b| {
        b.iter(|| {
            black_box(PlacementSim::per_file_baseline(
                &PlacementParams::fig5(1, 1),
                &trace,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_load_balance);
criterion_main!(benches);
