//! Microbenchmarks of the substrates: SHA-1 keying, wire codec, the
//! in-memory store, and overlay routing — the building blocks whose cost
//! the Section 6.1.2 model abstracts as `I` and `hc`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kosha_id::{dir_key, node_id_from_seed, Sha1};
use kosha_nfs::{NfsReply, NfsRequest};
use kosha_pastry::{PastryConfig, PastryNode};
use kosha_rpc::{Network, NodeAddr, ServiceId, ServiceMux, SimNetwork, WireRead, WireWrite};
use kosha_vfs::Vfs;
use std::hint::black_box;
use std::sync::Arc;

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [16usize, 256, 4096] {
        let data = vec![0xABu8; size];
        g.bench_with_input(BenchmarkId::new("digest", size), &data, |b, d| {
            b.iter(|| black_box(Sha1::digest(d)))
        });
    }
    g.bench_function("dir_key", |b| b.iter(|| black_box(dir_key("homework"))));
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let req = NfsRequest::Write {
        fh: kosha_nfs::Fh { ino: 42, gen: 1 },
        offset: 8192,
        data: vec![0x55u8; 32 * 1024],
    };
    let encoded = req.encode();
    let mut g = c.benchmark_group("wire");
    g.bench_function("encode-write-32k", |b| b.iter(|| black_box(req.encode())));
    g.bench_function("decode-write-32k", |b| {
        b.iter(|| black_box(NfsRequest::decode(&encoded).unwrap()))
    });
    let reply = NfsReply::Entries {
        entries: (0..64)
            .map(|i| kosha_nfs::messages::WireDirEntry {
                name: format!("entry-{i}"),
                fh: kosha_nfs::Fh { ino: i, gen: 1 },
                ftype: kosha_vfs::FileType::Regular,
            })
            .collect(),
    };
    g.bench_function("encode-readdir-64", |b| {
        b.iter(|| black_box(reply.encode()))
    });
    g.finish();
}

fn bench_vfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("vfs");
    g.bench_function("create-write-remove", |b| {
        let mut v = Vfs::new(1 << 30);
        let root = v.root();
        let mut i = 0u64;
        b.iter(|| {
            let name = format!("f{i}");
            i += 1;
            let (fh, _) = v.create(root, &name, 0o644, 0, 0).unwrap();
            v.write(fh, 0, &[1u8; 4096]).unwrap();
            v.remove(root, &name).unwrap();
        })
    });
    g.bench_function("path-resolve-depth-6", |b| {
        let mut v = Vfs::new(1 << 30);
        v.mkdir_p("/a/b/c/d/e/f", 0o755).unwrap();
        b.iter(|| black_box(v.resolve("/a/b/c/d/e/f").unwrap()))
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    for n in [8usize, 32, 128] {
        let net = SimNetwork::new_zero_latency();
        let mut nodes = Vec::new();
        for i in 0..n {
            let node = PastryNode::new(
                PastryConfig::default(),
                node_id_from_seed(&format!("rb-{i}")),
                NodeAddr(i as u64),
                net.clone() as Arc<dyn Network>,
            );
            let mux = Arc::new(ServiceMux::new());
            mux.register(ServiceId::Pastry, node.clone());
            net.attach(node.addr(), mux);
            node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
                .unwrap();
            nodes.push(node);
        }
        c.bench_with_input(BenchmarkId::new("pastry_route", n), &nodes, |b, nodes| {
            let mut k = 0u32;
            b.iter(|| {
                k = k.wrapping_add(1);
                let key = dir_key(&format!("key{k}"));
                black_box(nodes[0].route(key).unwrap())
            })
        });
    }
}

criterion_group!(benches, bench_sha1, bench_wire, bench_vfs, bench_routing);
criterion_main!(benches);
