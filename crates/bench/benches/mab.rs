//! Criterion bench for Tables 1–2: Modified Andrew Benchmark wall cost
//! of the full Kosha stack at different cluster sizes and distribution
//! levels, against the unmodified-NFS baseline.
//!
//! Criterion measures the *host* cost of running the simulation; the
//! paper-style virtual-time tables come from the `table1`/`table2`
//! binaries. Keeping both makes regressions in either the system's real
//! work-per-op or its modeled time visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kosha_sim::baseline::NfsBaseline;
use kosha_sim::cluster::{ClusterParams, SimCluster};
use kosha_sim::experiments::{mab_disk, mab_lan, table1_kosha_config};
use kosha_sim::mab::{run_mab, MabParams};
use std::hint::black_box;

fn bench_mab(c: &mut Criterion) {
    let params = MabParams::small();
    let mut g = c.benchmark_group("mab");
    g.sample_size(10);

    g.bench_function("nfs-baseline", |b| {
        b.iter(|| {
            let base = NfsBaseline::build(mab_lan(), mab_disk(), 64 << 30);
            let clock = base.clock();
            black_box(run_mab(&params, &base, &clock).unwrap())
        })
    });

    for nodes in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("kosha-nodes", nodes), &nodes, |b, &n| {
            b.iter(|| {
                let cluster = SimCluster::build(&ClusterParams {
                    nodes: n,
                    kosha: table1_kosha_config(),
                    latency: mab_lan(),
                    seed: 100 + n as u64,
                });
                let m = cluster.mount(0);
                let clock = cluster.clock();
                black_box(run_mab(&params, &m, &clock).unwrap())
            })
        });
    }

    for level in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("kosha-level", level), &level, |b, &l| {
            b.iter(|| {
                let mut cfg = table1_kosha_config();
                cfg.distribution_level = l;
                let cluster = SimCluster::build(&ClusterParams {
                    nodes: 4,
                    kosha: cfg,
                    latency: mab_lan(),
                    seed: 200,
                });
                let m = cluster.mount(0);
                let clock = cluster.clock();
                black_box(run_mab(&params, &m, &clock).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mab);
criterion_main!(benches);
