//! Property tests: for arbitrary overlay sizes and failure patterns, every
//! surviving node routes every key to the same owner — the live node whose
//! id is numerically closest (the DHT invariant Kosha's file placement
//! relies on).

use kosha_id::id::numerically_closest;
use kosha_id::{node_id_from_seed, Id};
use kosha_pastry::{PastryConfig, PastryNode};
use kosha_rpc::{Network, NodeAddr, ServiceId, ServiceMux, SimNetwork};
use proptest::prelude::*;
use std::sync::Arc;

fn build_ring(n: usize, seed: u64) -> (Arc<SimNetwork>, Vec<Arc<PastryNode>>) {
    let net = SimNetwork::new_zero_latency();
    let mut nodes = Vec::new();
    for i in 0..n {
        let id = node_id_from_seed(&format!("ring{seed}-host-{i}"));
        let node = PastryNode::new(
            PastryConfig::default(),
            id,
            NodeAddr(i as u64),
            net.clone() as Arc<dyn Network>,
        );
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Pastry, node.clone());
        net.attach(node.addr(), mux);
        let boot = if i == 0 { None } else { Some(NodeAddr(0)) };
        node.join(boot).unwrap();
        nodes.push(node);
    }
    (net, nodes)
}

proptest! {
    /// Overlay protocol messages round-trip the wire exactly.
    #[test]
    fn pastry_messages_round_trip(
        key in any::<u128>(),
        exclude in proptest::collection::vec(any::<u64>(), 0..8),
        row in any::<u32>(),
        nodes in proptest::collection::vec((any::<u128>(), any::<u64>()), 0..8),
    ) {
        use kosha_pastry::{NodeInfo, PastryReply, PastryRequest};
        use kosha_rpc::{WireRead, WireWrite};
        let infos: Vec<NodeInfo> = nodes
            .iter()
            .map(|&(id, addr)| NodeInfo { id: Id(id), addr: NodeAddr(addr) })
            .collect();
        let reqs = vec![
            PastryRequest::NextHop {
                key: Id(key),
                exclude: exclude.iter().map(|&a| NodeAddr(a)).collect(),
            },
            PastryRequest::GetRow { row },
            PastryRequest::GetLeafSet,
            PastryRequest::Ping,
        ];
        for req in reqs {
            let b = req.encode();
            prop_assert_eq!(PastryRequest::decode(&b).unwrap(), req);
        }
        let replies = vec![
            PastryReply::Row { entries: infos.clone() },
            PastryReply::NextHop { next: infos.first().copied(), owner: infos.is_empty() },
        ];
        for reply in replies {
            let b = reply.encode();
            prop_assert_eq!(PastryReply::decode(&b).unwrap(), reply);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ownership_agreement_under_failures(
        n in 2usize..24,
        seed in 0u64..1000,
        kill_mask in any::<u32>(),
        keys in proptest::collection::vec(any::<u128>(), 1..12),
    ) {
        let (net, nodes) = build_ring(n, seed);
        // Kill up to half the nodes (never node 0's whole ring).
        let mut dead: Vec<u64> = (0..n as u64)
            .filter(|i| kill_mask & (1 << (i % 32)) != 0)
            .collect();
        dead.truncate(n / 2);
        for &d in &dead {
            net.fail_node(NodeAddr(d));
        }
        let survivors: Vec<_> = nodes
            .iter()
            .filter(|nd| !dead.contains(&nd.addr().0))
            .collect();
        // Repair pass (simulates periodic maintenance after failures).
        for nd in &survivors {
            nd.maintain();
        }
        let live_ids: Vec<Id> = survivors.iter().map(|nd| nd.id()).collect();
        for &k in &keys {
            let key = Id(k);
            let expect = numerically_closest(key, &live_ids).unwrap();
            for nd in &survivors {
                let (owner, hops) = nd.route(key).unwrap();
                prop_assert_eq!(owner.id, expect, "node {} key {}", nd.addr(), key);
                prop_assert!(hops <= 6, "{} hops for {} nodes", hops, n);
            }
        }
    }

    #[test]
    fn replica_targets_are_closest_neighbors(n in 4usize..20, seed in 0u64..500, k in 1usize..4) {
        let (_net, nodes) = build_ring(n, seed);
        for node in &nodes {
            let targets = node.replica_targets(k);
            prop_assert_eq!(targets.len(), k.min(n - 1));
            // Targets are distinct and never the node itself.
            let mut ids: Vec<_> = targets.iter().map(|t| t.id).collect();
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), targets.len());
            prop_assert!(!ids.contains(&node.id()));
        }
    }
}
