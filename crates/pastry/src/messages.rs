//! Overlay protocol messages and their wire encodings.

use kosha_id::Id;
use kosha_rpc::{NodeAddr, Reader, WireError, WireRead, WireWrite, Writer};

/// A node's overlay identity: its Pastry id plus its physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeInfo {
    /// Pastry node identifier (changes if the machine is reincarnated).
    pub id: Id,
    /// Physical address on the transport.
    pub addr: NodeAddr,
}

impl WireWrite for NodeInfo {
    fn write(&self, w: &mut Writer) {
        w.value(&self.id);
        w.value(&self.addr);
    }
}
impl WireRead for NodeInfo {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeInfo {
            id: r.value()?,
            addr: r.value()?,
        })
    }
}

/// Requests a node's overlay service answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PastryRequest {
    /// "Which node should handle `key` next?" — one step of iterative
    /// routing. `exclude` lists addresses the caller has observed to be
    /// dead so the hop proposes an alternative.
    NextHop {
        /// Routing key.
        key: Id,
        /// Known-dead addresses to route around.
        exclude: Vec<NodeAddr>,
    },
    /// Fetch routing-table row `row` (used during join: the `i`-th node on
    /// the join route supplies row `i`).
    GetRow {
        /// Row index.
        row: u32,
    },
    /// Fetch the node's current leaf set (join and repair).
    GetLeafSet,
    /// "I exist; add me to your tables." Sent by a joined node to every
    /// node it learned of, and by maintenance when links are refreshed.
    Announce {
        /// The announcing node.
        node: NodeInfo,
    },
    /// Graceful departure notice.
    Depart {
        /// The departing node.
        node: NodeInfo,
    },
    /// Liveness probe.
    Ping,
}

impl WireWrite for PastryRequest {
    fn write(&self, w: &mut Writer) {
        match self {
            PastryRequest::NextHop { key, exclude } => {
                w.u8(0);
                w.value(key);
                w.seq(exclude);
            }
            PastryRequest::GetRow { row } => {
                w.u8(1);
                w.u32(*row);
            }
            PastryRequest::GetLeafSet => w.u8(2),
            PastryRequest::Announce { node } => {
                w.u8(3);
                w.value(node);
            }
            PastryRequest::Depart { node } => {
                w.u8(4);
                w.value(node);
            }
            PastryRequest::Ping => w.u8(5),
        }
    }
}

impl WireRead for PastryRequest {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => PastryRequest::NextHop {
                key: r.value()?,
                exclude: r.seq()?,
            },
            1 => PastryRequest::GetRow { row: r.u32()? },
            2 => PastryRequest::GetLeafSet,
            3 => PastryRequest::Announce { node: r.value()? },
            4 => PastryRequest::Depart { node: r.value()? },
            5 => PastryRequest::Ping,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// Replies to [`PastryRequest`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PastryReply {
    /// Next-hop decision: if `owner` the replying node is the key's owner;
    /// otherwise `next` names a strictly better hop (or `None` if the node
    /// knows no better live candidate, in which case the replier is the
    /// best known owner).
    NextHop {
        /// Better hop toward the key, if one exists.
        next: Option<NodeInfo>,
        /// True if the replying node owns the key.
        owner: bool,
    },
    /// One routing-table row (non-empty entries only).
    Row {
        /// Entries present in the row.
        entries: Vec<NodeInfo>,
    },
    /// The node's leaf set members (both sides, deduplicated), plus the
    /// node itself.
    LeafSet {
        /// The replying node.
        me: NodeInfo,
        /// Leaf set members.
        members: Vec<NodeInfo>,
    },
    /// Generic acknowledgement.
    Ack,
    /// Ping response carrying the node's current identity (a reincarnated
    /// node answers with its *new* id, letting callers detect staleness).
    Pong {
        /// The responding node.
        node: NodeInfo,
    },
}

impl WireWrite for PastryReply {
    fn write(&self, w: &mut Writer) {
        match self {
            PastryReply::NextHop { next, owner } => {
                w.u8(0);
                w.option(next);
                w.boolean(*owner);
            }
            PastryReply::Row { entries } => {
                w.u8(1);
                w.seq(entries);
            }
            PastryReply::LeafSet { me, members } => {
                w.u8(2);
                w.value(me);
                w.seq(members);
            }
            PastryReply::Ack => w.u8(3),
            PastryReply::Pong { node } => {
                w.u8(4);
                w.value(node);
            }
        }
    }
}

impl WireRead for PastryReply {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => PastryReply::NextHop {
                next: r.option()?,
                owner: r.boolean()?,
            },
            1 => PastryReply::Row { entries: r.seq()? },
            2 => PastryReply::LeafSet {
                me: r.value()?,
                members: r.seq()?,
            },
            3 => PastryReply::Ack,
            4 => PastryReply::Pong { node: r.value()? },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_req(m: PastryRequest) {
        let b = m.encode();
        assert_eq!(PastryRequest::decode(&b).unwrap(), m);
    }

    fn rt_rep(m: PastryReply) {
        let b = m.encode();
        assert_eq!(PastryReply::decode(&b).unwrap(), m);
    }

    fn ni(id: u128, addr: u64) -> NodeInfo {
        NodeInfo {
            id: Id(id),
            addr: NodeAddr(addr),
        }
    }

    #[test]
    fn requests_round_trip() {
        rt_req(PastryRequest::NextHop {
            key: Id(42),
            exclude: vec![NodeAddr(1), NodeAddr(9)],
        });
        rt_req(PastryRequest::GetRow { row: 7 });
        rt_req(PastryRequest::GetLeafSet);
        rt_req(PastryRequest::Announce { node: ni(5, 3) });
        rt_req(PastryRequest::Depart { node: ni(5, 3) });
        rt_req(PastryRequest::Ping);
    }

    #[test]
    fn replies_round_trip() {
        rt_rep(PastryReply::NextHop {
            next: Some(ni(1, 2)),
            owner: false,
        });
        rt_rep(PastryReply::NextHop {
            next: None,
            owner: true,
        });
        rt_rep(PastryReply::Row {
            entries: vec![ni(1, 2), ni(3, 4)],
        });
        rt_rep(PastryReply::LeafSet {
            me: ni(9, 9),
            members: vec![ni(1, 2)],
        });
        rt_rep(PastryReply::Ack);
        rt_rep(PastryReply::Pong { node: ni(8, 8) });
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(PastryRequest::decode(&[99]).is_err());
        assert!(PastryReply::decode(&[99]).is_err());
    }
}
