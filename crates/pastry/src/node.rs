//! The Pastry node: iterative prefix routing, join, failure repair, and
//! leaf-set change notifications.

use crate::messages::{NodeInfo, PastryReply, PastryRequest};
use crate::state::{LeafSet, RoutingTable};
use kosha_id::Id;
use kosha_obs::{Counter, Gauge, Histogram, Obs};
use kosha_rpc::network::call_typed;
use kosha_rpc::{Network, NodeAddr, RpcError, RpcHandler, RpcRequest, RpcResponse, ServiceId};
use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::sync::Arc;

/// Overlay tuning parameters.
#[derive(Debug, Clone)]
pub struct PastryConfig {
    /// Nodes kept on each side of the leaf set (`l/2`). Pastry's common
    /// configuration is `l = 16`, i.e. `leaf_half = 8`.
    pub leaf_half: usize,
    /// Safety cap on routing hops before declaring a routing loop.
    pub max_hops: usize,
    /// Pastry's locality heuristic (Castro et al., "Exploiting network
    /// proximity in peer-to-peer overlay networks", cited by the paper):
    /// when learning a node, measure its round-trip time and let closer
    /// nodes displace farther incumbents in routing-table slots. Costs
    /// one ping per learned node; off by default.
    pub proximity_aware: bool,
}

impl Default for PastryConfig {
    fn default() -> Self {
        PastryConfig {
            leaf_half: 8,
            max_hops: 64,
            proximity_aware: false,
        }
    }
}

/// Errors surfaced by overlay operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayError {
    /// Transport failure that could not be routed around.
    Rpc(RpcError),
    /// No live route to the key's owner was found within the hop cap.
    NoRoute,
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::Rpc(e) => write!(f, "overlay rpc failed: {e}"),
            OverlayError::NoRoute => write!(f, "no route to key owner"),
        }
    }
}

impl std::error::Error for OverlayError {}

impl From<RpcError> for OverlayError {
    fn from(e: RpcError) -> Self {
        OverlayError::Rpc(e)
    }
}

/// Application callback for leaf-set membership changes — the hook Kosha's
/// replica manager registers (Section 4.3: the p2p component "informs
/// Kosha on a node N when nodes in N's leaf set are affected").
///
/// Callbacks are invoked *outside* the node's state lock; they may issue
/// network calls (e.g. to push replicas to a new neighbor) but must not
/// call back into the node that triggered the notification synchronously.
pub trait OverlayObserver: Send + Sync {
    /// A node entered this node's leaf set.
    fn on_leaf_joined(&self, node: NodeInfo) {
        let _ = node;
    }
    /// A node left this node's leaf set (failure or departure).
    fn on_leaf_left(&self, node: NodeInfo) {
        let _ = node;
    }
}

struct State {
    rt: RoutingTable,
    ls: LeafSet,
    /// Addresses this node currently believes are dead, each tagged with
    /// the insertion sequence number. Entries are added on observed
    /// failures and removed when the address proves itself alive (an
    /// `Announce` or successful ping). Without this suspicion list,
    /// repair would re-learn a dead neighbor from a peer that has not
    /// yet noticed the failure, then re-fail it — forever. The map is
    /// capped at [`DEAD_TOMBSTONE_CAP`]: the oldest tombstone is evicted
    /// on overflow, so lifetime churn cannot grow it without bound.
    dead: std::collections::BTreeMap<NodeAddr, u64>,
    /// Monotonic insertion counter ordering `dead` tombstones for
    /// deterministic oldest-first eviction.
    dead_seq: u64,
}

/// Upper bound on remembered dead-node tombstones. Suspicion only needs
/// to outlive the gossip horizon of a failure; the oldest entries have
/// long since served that purpose.
const DEAD_TOMBSTONE_CAP: usize = 1024;

/// One overlay participant.
///
/// ```
/// use kosha_id::node_id_from_seed;
/// use kosha_pastry::{PastryConfig, PastryNode};
/// use kosha_rpc::{Network, NodeAddr, ServiceId, ServiceMux, SimNetwork};
/// use std::sync::Arc;
///
/// let net = SimNetwork::new_zero_latency();
/// let mut nodes = Vec::new();
/// for i in 0..4u64 {
///     let node = PastryNode::new(
///         PastryConfig::default(),
///         node_id_from_seed(&format!("doc-{i}")),
///         NodeAddr(i),
///         net.clone() as Arc<dyn Network>,
///     );
///     let mux = Arc::new(ServiceMux::new());
///     mux.register(ServiceId::Pastry, node.clone());
///     net.attach(node.addr(), mux);
///     node.join(if i == 0 { None } else { Some(NodeAddr(0)) }).unwrap();
///     nodes.push(node);
/// }
/// // Every node routes a key to the same owner.
/// let key = kosha_id::dir_key("projects");
/// let owner = nodes[0].route_owner(key).unwrap();
/// for n in &nodes {
///     assert_eq!(n.route_owner(key).unwrap().id, owner.id);
/// }
/// ```
pub struct PastryNode {
    info: NodeInfo,
    cfg: PastryConfig,
    net: Arc<dyn Network>,
    state: Mutex<State>,
    observers: RwLock<Vec<Arc<dyn OverlayObserver>>>,
    obs: Arc<Obs>,
    metrics: OverlayMetrics,
}

/// Pre-resolved overlay metric handles (see `DESIGN.md` §Observability).
struct OverlayMetrics {
    /// Hops taken by successful [`PastryNode::route`] calls.
    route_hops: Arc<Histogram>,
    /// Routes that exhausted the hop cap or ran out of live candidates.
    route_failures: Arc<Counter>,
    /// Duration of successful [`PastryNode::join`] calls, in nanoseconds
    /// on the transport clock.
    join_nanos: Arc<Histogram>,
    /// Leaf-set repairs triggered by observed failures.
    leaf_repairs: Arc<Counter>,
    /// Current distinct leaf-set membership (`pastry_leaf_set_size`),
    /// refreshed at every mutation site so churn is visible live and as
    /// a flight-recorder series.
    leaf_size: Arc<Gauge>,
}

impl OverlayMetrics {
    fn new(obs: &Obs) -> Self {
        let m = OverlayMetrics {
            route_hops: obs.registry.histogram("pastry_route_hops"),
            route_failures: obs.registry.counter("pastry_route_failures_total"),
            join_nanos: obs.registry.histogram("pastry_join_nanos"),
            leaf_repairs: obs.registry.counter("pastry_leaf_repairs_total"),
            leaf_size: obs.registry.gauge("pastry_leaf_set_size"),
        };
        // Flight-recorder sources: leaf-set size and route-hop median
        // become time-series on every sampler tick.
        obs.recorder
            .watch_gauge("pastry_leaf_set_size", &m.leaf_size);
        obs.recorder
            .watch_histogram_pct("pastry_route_hops:p50", &m.route_hops, 50);
        m
    }
}

impl PastryNode {
    /// Creates a node with identifier `id` at transport address `addr`.
    /// The node participates once [`PastryNode::join`] has been called and
    /// the returned handler is registered for [`ServiceId::Pastry`].
    pub fn new(cfg: PastryConfig, id: Id, addr: NodeAddr, net: Arc<dyn Network>) -> Arc<Self> {
        Self::new_with_obs(cfg, id, addr, net, Obs::new())
    }

    /// Like [`PastryNode::new`], but recording metrics and journal events
    /// into a caller-supplied observability domain (the hosting `koshad`
    /// shares one `Obs` across its layers so events correlate).
    pub fn new_with_obs(
        cfg: PastryConfig,
        id: Id,
        addr: NodeAddr,
        net: Arc<dyn Network>,
        obs: Arc<Obs>,
    ) -> Arc<Self> {
        let info = NodeInfo { id, addr };
        let metrics = OverlayMetrics::new(&obs);
        Arc::new(PastryNode {
            info,
            state: Mutex::new(State {
                rt: RoutingTable::new(id),
                ls: LeafSet::new(id, cfg.leaf_half),
                dead: std::collections::BTreeMap::new(),
                dead_seq: 0,
            }),
            cfg,
            net,
            observers: RwLock::new(Vec::new()),
            obs,
            metrics,
        })
    }

    /// The observability domain this node records into.
    #[must_use]
    pub fn obs(&self) -> Arc<Obs> {
        Arc::clone(&self.obs)
    }

    fn journal(&self, kind: &'static str, op_id: u64, detail: String) {
        self.obs.journal.record(
            self.net.clock().now().0,
            self.info.addr.0,
            kind,
            op_id,
            detail,
        );
    }

    /// This node's overlay identity.
    #[must_use]
    pub fn info(&self) -> NodeInfo {
        self.info
    }

    /// This node's identifier.
    #[must_use]
    pub fn id(&self) -> Id {
        self.info.id
    }

    /// This node's transport address.
    #[must_use]
    pub fn addr(&self) -> NodeAddr {
        self.info.addr
    }

    /// Registers a leaf-set observer.
    pub fn add_observer(&self, obs: Arc<dyn OverlayObserver>) {
        self.observers.write().push(obs);
    }

    /// Current distinct leaf-set members.
    #[must_use]
    pub fn leaf_members(&self) -> Vec<NodeInfo> {
        self.state.lock().ls.members()
    }

    /// The `k` nearest leaf-set nodes for replica placement (Section 4.2).
    #[must_use]
    pub fn replica_targets(&self, k: usize) -> Vec<NodeInfo> {
        self.state.lock().ls.replica_targets(k)
    }

    /// Every node this node currently knows (leaf set + routing table).
    #[must_use]
    pub fn known_nodes(&self) -> Vec<NodeInfo> {
        let st = self.state.lock();
        let mut out = st.ls.members();
        for n in st.rt.all_entries() {
            if !out.iter().any(|m| m.id == n.id) {
                out.push(n);
            }
        }
        out
    }

    // ---- learning and forgetting -------------------------------------

    /// Absorbs knowledge of `node`; fires `on_leaf_joined` if it entered
    /// the leaf set. With proximity awareness on, the node's RTT is
    /// measured first (outside any lock) so closer nodes win slots.
    pub fn learn(&self, node: NodeInfo) {
        if node.id == self.info.id {
            return;
        }
        let rtt = if self.cfg.proximity_aware {
            if self.state.lock().dead.contains_key(&node.addr) {
                return;
            }
            self.measure_rtt(node.addr)
        } else {
            None
        };
        let entered_ls = {
            let mut st = self.state.lock();
            if st.dead.contains_key(&node.addr) {
                return; // refuse to re-learn a suspected-dead address
            }
            st.rt.insert_with_rtt(node, rtt);
            let entered = st.ls.insert(node);
            if entered {
                self.metrics.leaf_size.set(st.ls.members().len() as i64);
            }
            entered
        };
        if entered_ls {
            // Snapshot before dispatch: observers run replication RPCs,
            // and holding the registry lock across them would block
            // register_observer (and deadlock if a handler re-enters).
            let observers = self.observers.read().clone();
            for obs in &observers {
                obs.on_leaf_joined(node);
            }
        }
    }

    /// Drops all knowledge of the node at `addr`; fires `on_leaf_left` for
    /// each leaf-set member removed, then repairs the leaf set from the
    /// surviving extremes.
    pub fn note_failed(&self, addr: NodeAddr) {
        if addr == self.info.addr {
            return;
        }
        let removed = {
            let mut st = self.state.lock();
            let seq = st.dead_seq;
            st.dead_seq += 1;
            let newly_dead = st.dead.insert(addr, seq).is_none();
            if st.dead.len() > DEAD_TOMBSTONE_CAP {
                // Deterministic oldest-first eviction keeps the tombstone
                // set bounded across arbitrary churn.
                if let Some(oldest) = st.dead.iter().min_by_key(|&(_, s)| *s).map(|(a, _)| *a) {
                    st.dead.remove(&oldest);
                }
            }
            st.rt.remove_addr(addr);
            let removed = st.ls.remove_addr(addr);
            if !newly_dead && removed.is_empty() {
                return; // already processed this failure
            }
            if !removed.is_empty() {
                self.metrics.leaf_size.set(st.ls.members().len() as i64);
            }
            removed
        };
        if removed.is_empty() {
            return;
        }
        // Snapshot before dispatch, as in `learn`: `on_leaf_left`
        // triggers re-replication RPCs.
        let observers = self.observers.read().clone();
        for n in &removed {
            for obs in &observers {
                obs.on_leaf_left(*n);
            }
        }
        self.metrics.leaf_repairs.inc();
        let op = self.obs.next_op_id();
        self.journal(
            "leaf_repair",
            op,
            format!("lost {} leaf member(s) at {addr}", removed.len()),
        );
        self.repair_leafset_excluding(&[addr]);
    }

    /// Refills the leaf set by asking the surviving extremes (and, if the
    /// set emptied, the routing table) for their leaf sets.
    pub fn repair_leafset(&self) {
        self.repair_leafset_excluding(&[]);
    }

    /// Leaf-set repair that refuses to re-learn `dead` addresses — used
    /// right after a failure/departure, when other nodes may still be
    /// advertising the dead node in their leaf sets.
    fn repair_leafset_excluding(&self, dead: &[NodeAddr]) {
        let sources: Vec<NodeInfo> = {
            let st = self.state.lock();
            let mut s = st.ls.extremes();
            if s.is_empty() {
                s = st.rt.all_entries();
                s.truncate(4);
            }
            s
        };
        for src in sources {
            if dead.contains(&src.addr) {
                continue;
            }
            match self.rpc(src.addr, &PastryRequest::GetLeafSet) {
                Ok(PastryReply::LeafSet { me, members }) => {
                    self.learn(me);
                    for m in members {
                        if !dead.contains(&m.addr) {
                            self.learn(m);
                        }
                    }
                }
                Ok(_) => {}
                Err(_) => {
                    // The repair source itself is dead; recurse (bounded by
                    // ring size since each failure shrinks our tables).
                    self.note_failed(src.addr);
                }
            }
        }
    }

    /// Liveness-probes every leaf-set member, dropping and repairing dead
    /// ones, then re-announces this node to its neighborhood. Called
    /// periodically by the hosting application (simulations call it after
    /// failure events).
    ///
    /// Both rounds are concurrent fan-outs (`call_many`): probing `l`
    /// members costs one RPC round trip of modeled time rather than `l`,
    /// which is what keeps periodic maintenance affordable at 10k-node
    /// scale. Repairs triggered by `note_failed` run between the rounds,
    /// so the announce round already sees the repaired leaf set.
    pub fn maintain(&self) {
        let probed = self.leaf_members();
        if !probed.is_empty() {
            let ping = RpcRequest::new(ServiceId::Pastry, &PastryRequest::Ping);
            let batch = probed.iter().map(|m| (m.addr, ping.clone())).collect();
            let results = self.net.call_many(self.info.addr, batch);
            for (m, result) in probed.into_iter().zip(results) {
                match result.and_then(|resp| resp.decode::<PastryReply>()) {
                    Ok(PastryReply::Pong { node }) if node.id == m.id => {}
                    _ => self.note_failed(m.addr),
                }
            }
        }
        let neighborhood = self.leaf_members();
        if !neighborhood.is_empty() {
            let announce = RpcRequest::new(
                ServiceId::Pastry,
                &PastryRequest::Announce { node: self.info },
            );
            let batch = neighborhood
                .into_iter()
                .map(|m| (m.addr, announce.clone()))
                .collect();
            let _ = self.net.call_many(self.info.addr, batch);
        }
    }

    // ---- joining ------------------------------------------------------

    /// Joins the overlay. `bootstrap = None` starts a new overlay of one
    /// node; otherwise the newcomer routes toward its own id via the
    /// bootstrap node, seeds its tables from every node on the path plus
    /// the owner's leaf set, and announces itself to everyone it learned
    /// of — after which all affected nodes have been informed (and their
    /// observers fired), as required for Kosha's migration (Section 4.3.1).
    pub fn join(&self, bootstrap: Option<NodeAddr>) -> Result<(), OverlayError> {
        let Some(boot) = bootstrap else {
            return Ok(());
        };
        let clock = self.net.clock();
        let t0 = clock.now();
        // Identify the bootstrap node.
        let boot_info = match self.rpc(boot, &PastryRequest::Ping)? {
            PastryReply::Pong { node } => node,
            _ => return Err(OverlayError::Rpc(RpcError::Remote("bad pong".into()))),
        };
        self.learn(boot_info);
        // Route toward our own id, collecting the path.
        let mut exclude: Vec<NodeAddr> = vec![self.info.addr];
        let mut current = boot_info;
        let mut path = vec![boot_info];
        let mut hops = 0;
        loop {
            hops += 1;
            if hops > self.cfg.max_hops {
                return Err(OverlayError::NoRoute);
            }
            let reply = self.rpc(
                current.addr,
                &PastryRequest::NextHop {
                    key: self.info.id,
                    exclude: exclude.clone(),
                },
            );
            match reply {
                Ok(PastryReply::NextHop { next, owner }) => {
                    if owner {
                        break;
                    }
                    let Some(next) = next else { break };
                    if next.id == current.id || path.iter().any(|p| p.id == next.id) {
                        break;
                    }
                    path.push(next);
                    current = next;
                }
                Ok(_) => return Err(OverlayError::Rpc(RpcError::Remote("bad reply".into()))),
                Err(RpcError::Unreachable(a)) => {
                    exclude.push(a);
                    self.note_failed(a);
                    // Fall back to the previous live path node.
                    match path.iter().rev().find(|p| !exclude.contains(&p.addr)) {
                        Some(prev) => current = *prev,
                        None => return Err(OverlayError::NoRoute),
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        // Seed state: each path node's relevant routing row + the owner's
        // (and path nodes') leaf sets.
        for (i, p) in path.clone().into_iter().enumerate() {
            self.learn(p);
            let row = self.info.id.shared_prefix_digits(p.id).min(i);
            if let Ok(PastryReply::Row { entries }) =
                self.rpc(p.addr, &PastryRequest::GetRow { row: row as u32 })
            {
                for e in entries {
                    self.learn(e);
                }
            }
            if let Ok(PastryReply::LeafSet { me, members }) =
                self.rpc(p.addr, &PastryRequest::GetLeafSet)
            {
                self.learn(me);
                for m in members {
                    self.learn(m);
                }
            }
        }
        // Announce ourselves to everyone we know, as one concurrent
        // fan-out: join cost stays one announce round trip no matter
        // how many nodes the path taught us about.
        let known = self.known_nodes();
        if !known.is_empty() {
            let announce = RpcRequest::new(
                ServiceId::Pastry,
                &PastryRequest::Announce { node: self.info },
            );
            let batch = known
                .into_iter()
                .map(|n| (n.addr, announce.clone()))
                .collect();
            let _ = self.net.call_many(self.info.addr, batch);
        }
        self.metrics.join_nanos.record(clock.now().since_nanos(t0));
        let op = self.obs.next_op_id();
        self.journal("join", op, format!("joined via {boot} after {hops} hop(s)"));
        Ok(())
    }

    /// Gracefully leaves the overlay, notifying every known node with
    /// one concurrent `Depart` fan-out (replies are ignored — nodes
    /// that miss the notice discover the departure via liveness probes).
    pub fn leave(&self) {
        let known = self.known_nodes();
        if known.is_empty() {
            return;
        }
        let depart = RpcRequest::new(
            ServiceId::Pastry,
            &PastryRequest::Depart { node: self.info },
        );
        let batch = known
            .into_iter()
            .map(|n| (n.addr, depart.clone()))
            .collect();
        let _ = self.net.call_many(self.info.addr, batch);
    }

    // ---- routing ------------------------------------------------------

    /// Local next-hop decision (one step of Pastry's routing procedure).
    fn local_next_hop(&self, key: Id, exclude: &[NodeAddr]) -> (Option<NodeInfo>, bool) {
        let st = self.state.lock();
        let me = self.info.id;
        if key == me {
            return (None, true);
        }
        if st.ls.covers(key) {
            return match st.ls.closest_to(key, exclude) {
                None => (None, true),
                Some(n) => (Some(n), false),
            };
        }
        // Prefix routing step.
        if let Some(e) = st.rt.entry_for(key) {
            if !exclude.contains(&e.addr) {
                return (Some(e), false);
            }
        }
        // Rare case: any known node with at least as long a prefix that is
        // strictly numerically closer to the key than we are.
        let row = me.shared_prefix_digits(key);
        let mut best: Option<NodeInfo> = None;
        let mut best_d = me.ring_distance(key);
        let candidates = st
            .ls
            .members()
            .into_iter()
            .chain(st.rt.all_entries())
            .collect::<Vec<_>>();
        for c in candidates {
            if exclude.contains(&c.addr) {
                continue;
            }
            if c.id.shared_prefix_digits(key) >= row {
                let d = c.id.ring_distance(key);
                if d < best_d {
                    best_d = d;
                    best = Some(c);
                }
            }
        }
        match best {
            Some(n) => (Some(n), false),
            None => (None, true),
        }
    }

    /// Routes `key` to its owner: the live node whose id is numerically
    /// closest. Returns the owner and the number of overlay hops taken
    /// (0 when this node owns the key).
    pub fn route(&self, key: Id) -> Result<(NodeInfo, usize), OverlayError> {
        let clock = self.net.clock();
        let result = self.obs.tracer.child(
            || "pastry:route".to_string(),
            self.info.addr.0,
            || clock.now().0,
            || self.route_inner(key),
        );
        match &result {
            Ok((_, hops)) => self.metrics.route_hops.record(*hops as u64),
            Err(_) => self.metrics.route_failures.inc(),
        }
        result
    }

    fn route_inner(&self, key: Id) -> Result<(NodeInfo, usize), OverlayError> {
        let mut exclude: Vec<NodeAddr> = Vec::new();
        let mut hops = 0usize;
        let mut total = 0usize;
        'restart: loop {
            let mut current = self.info;
            loop {
                total += 1;
                if total > self.cfg.max_hops * 2 {
                    return Err(OverlayError::NoRoute);
                }
                let (next, owner) = if current.id == self.info.id {
                    self.local_next_hop(key, &exclude)
                } else {
                    match self.rpc(
                        current.addr,
                        &PastryRequest::NextHop {
                            key,
                            exclude: exclude.clone(),
                        },
                    ) {
                        Ok(PastryReply::NextHop { next, owner }) => (next, owner),
                        Ok(_) => {
                            return Err(OverlayError::Rpc(RpcError::Remote("bad reply".into())))
                        }
                        Err(RpcError::Unreachable(a)) => {
                            exclude.push(a);
                            self.note_failed(a);
                            continue 'restart;
                        }
                        Err(e) => return Err(e.into()),
                    }
                };
                if owner {
                    return Ok((current, hops));
                }
                let Some(next) = next else {
                    return Ok((current, hops));
                };
                if next.id == current.id {
                    return Ok((current, hops));
                }
                // Verify the proposed hop is alive before committing: the
                // NextHop RPC to it will be the verification; a dead hop is
                // excluded and routing restarts.
                current = next;
                hops += 1;
            }
        }
    }

    /// Routes `key` and discards the hop count.
    pub fn route_owner(&self, key: Id) -> Result<NodeInfo, OverlayError> {
        self.route(key).map(|(n, _)| n)
    }

    /// Measures round-trip time to `addr` with one ping, on the shared
    /// clock (virtual or wall). `None` if the node is unreachable.
    pub fn measure_rtt(&self, addr: NodeAddr) -> Option<std::time::Duration> {
        let clock = self.net.clock();
        let t0 = clock.now();
        match self.rpc(addr, &PastryRequest::Ping) {
            Ok(PastryReply::Pong { .. }) => Some(clock.now().since(t0)),
            _ => None,
        }
    }

    fn rpc(&self, to: NodeAddr, req: &PastryRequest) -> Result<PastryReply, RpcError> {
        call_typed(
            self.net.as_ref(),
            self.info.addr,
            to,
            ServiceId::Pastry,
            req,
        )
    }
}

impl RpcHandler for PastryNode {
    // lint: allow(L005) overlay protocol handler: join/announce/repair perform bounded nested routing and probe RPCs by design; the transport's targeted helping prevents mailbox self-deadlock (DESIGN.md §14)
    fn handle(&self, from: NodeAddr, body: &[u8]) -> Result<RpcResponse, RpcError> {
        use kosha_rpc::WireRead;
        let req = PastryRequest::decode(body)?;
        let _ = from;
        let reply = match req {
            PastryRequest::NextHop { key, exclude } => {
                let (next, owner) = self.local_next_hop(key, &exclude);
                PastryReply::NextHop { next, owner }
            }
            PastryRequest::GetRow { row } => PastryReply::Row {
                entries: self.state.lock().rt.row_entries(row as usize),
            },
            PastryRequest::GetLeafSet => PastryReply::LeafSet {
                me: self.info,
                members: self.leaf_members(),
            },
            PastryRequest::Announce { node } => {
                // An announcement is proof of life: clear any suspicion of
                // this address (e.g. a recovered or reincarnated machine).
                self.state.lock().dead.remove(&node.addr);
                self.learn(node);
                PastryReply::Ack
            }
            PastryRequest::Depart { node } => {
                self.note_failed(node.addr);
                PastryReply::Ack
            }
            PastryRequest::Ping => PastryReply::Pong { node: self.info },
        };
        Ok(RpcResponse::new(&reply))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosha_id::id::numerically_closest;
    use kosha_id::node_id_from_seed;
    use kosha_rpc::{ServiceMux, SimNetwork};

    /// Builds an overlay of `n` nodes joined sequentially through node 0.
    fn build_ring(n: usize) -> (Arc<SimNetwork>, Vec<Arc<PastryNode>>) {
        let net = SimNetwork::new_zero_latency();
        let mut nodes = Vec::new();
        for i in 0..n {
            let id = node_id_from_seed(&format!("host-{i}"));
            let node = PastryNode::new(
                PastryConfig::default(),
                id,
                NodeAddr(i as u64),
                net.clone() as Arc<dyn Network>,
            );
            let mux = Arc::new(ServiceMux::new());
            mux.register(ServiceId::Pastry, node.clone());
            net.attach(node.addr(), mux);
            let boot = if i == 0 { None } else { Some(NodeAddr(0)) };
            node.join(boot).unwrap();
            nodes.push(node);
        }
        (net, nodes)
    }

    fn expected_owner(nodes: &[Arc<PastryNode>], key: Id, dead: &[u64]) -> Id {
        let ids: Vec<Id> = nodes
            .iter()
            .filter(|n| !dead.contains(&n.addr().0))
            .map(|n| n.id())
            .collect();
        numerically_closest(key, &ids).unwrap()
    }

    #[test]
    fn single_node_owns_everything() {
        let (_net, nodes) = build_ring(1);
        let (owner, hops) = nodes[0].route(Id(12345)).unwrap();
        assert_eq!(owner.id, nodes[0].id());
        assert_eq!(hops, 0);
    }

    #[test]
    fn all_nodes_agree_on_ownership() {
        let (_net, nodes) = build_ring(12);
        for k in 0..40u32 {
            let key = node_id_from_seed(&format!("key-{k}"));
            let expect = expected_owner(&nodes, key, &[]);
            for n in &nodes {
                let (owner, _) = n.route(key).unwrap();
                assert_eq!(owner.id, expect, "node {} disagrees on key {k}", n.addr());
            }
        }
    }

    #[test]
    fn small_overlay_routes_in_one_hop() {
        // Section 6.1.1: "the DHT lookup is always one hop in the small
        // p2p overlay" — with 8 nodes and l=16 every node knows every
        // other, so routing is at most one hop.
        let (_net, nodes) = build_ring(8);
        for k in 0..20u32 {
            let key = node_id_from_seed(&format!("key-{k}"));
            for n in &nodes {
                let (_, hops) = n.route(key).unwrap();
                assert!(hops <= 1, "{} hops in an 8-node overlay", hops);
            }
        }
    }

    #[test]
    fn routing_survives_failures() {
        let (net, nodes) = build_ring(16);
        // Kill five nodes.
        let dead = [3u64, 5, 8, 11, 13];
        for d in dead {
            net.fail_node(NodeAddr(d));
        }
        for n in nodes.iter().filter(|n| !dead.contains(&n.addr().0)) {
            n.maintain();
        }
        for k in 0..30u32 {
            let key = node_id_from_seed(&format!("key-{k}"));
            let expect = expected_owner(&nodes, key, &dead);
            for n in nodes.iter().filter(|n| !dead.contains(&n.addr().0)) {
                let (owner, _) = n.route(key).unwrap();
                assert_eq!(owner.id, expect, "after failures, node {}", n.addr());
            }
        }
    }

    #[test]
    fn leafset_observer_fires_on_join_and_failure() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct Counter {
            joined: AtomicUsize,
            left: AtomicUsize,
        }
        impl OverlayObserver for Counter {
            fn on_leaf_joined(&self, _n: NodeInfo) {
                self.joined.fetch_add(1, Ordering::SeqCst);
            }
            fn on_leaf_left(&self, _n: NodeInfo) {
                self.left.fetch_add(1, Ordering::SeqCst);
            }
        }

        let (net, nodes) = build_ring(6);
        let obs = Arc::new(Counter {
            joined: AtomicUsize::new(0),
            left: AtomicUsize::new(0),
        });
        nodes[0].add_observer(obs.clone());

        // A 7th node joins: observer on node 0 must fire (6 nodes < l, so
        // everyone is in everyone's leaf set).
        let id = node_id_from_seed("host-new");
        let newcomer = PastryNode::new(
            PastryConfig::default(),
            id,
            NodeAddr(99),
            net.clone() as Arc<dyn Network>,
        );
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Pastry, newcomer.clone());
        net.attach(NodeAddr(99), mux);
        newcomer.join(Some(NodeAddr(0))).unwrap();
        assert_eq!(obs.joined.load(Ordering::SeqCst), 1);

        // It fails: maintenance on node 0 must fire on_leaf_left.
        net.fail_node(NodeAddr(99));
        nodes[0].maintain();
        assert_eq!(obs.left.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn departure_removes_node_from_tables() {
        let (_net, nodes) = build_ring(5);
        nodes[4].leave();
        for n in &nodes[..4] {
            assert!(
                !n.leaf_members().iter().any(|m| m.id == nodes[4].id()),
                "node {} still lists the departed node",
                n.addr()
            );
        }
    }

    #[test]
    fn hops_scale_logarithmically() {
        let (_net, nodes) = build_ring(48);
        let mut max_hops = 0;
        for k in 0..60u32 {
            let key = node_id_from_seed(&format!("key-{k}"));
            let (_, hops) = nodes[k as usize % 48].route(key).unwrap();
            max_hops = max_hops.max(hops);
        }
        // With b=4 and 48 nodes, log_16(48) < 2; generous bound of 4
        // accommodates sparse routing tables right after join.
        assert!(max_hops <= 4, "max hops {max_hops} too high for 48 nodes");
    }

    #[test]
    fn proximity_awareness_prefers_nearby_hops() {
        use kosha_rpc::{Clock, LatencyModel};
        use std::time::Duration;

        // Two clusters 100 units apart; within-cluster links are cheap.
        let build = |proximity: bool| -> Duration {
            let net = SimNetwork::new(LatencyModel {
                hop_latency: Duration::from_micros(50),
                per_distance_unit: Duration::from_micros(20),
                bandwidth_bps: u64::MAX,
                server_op_cost: Duration::ZERO,
                loopback_cost: Duration::ZERO,
                timeout: Duration::from_millis(100),
            });
            let n = 40usize;
            let mut nodes = Vec::new();
            for i in 0..n {
                let addr = NodeAddr(i as u64);
                // Even nodes in cluster A (near origin), odd in cluster B.
                let (x, y) = if i % 2 == 0 {
                    ((i % 7) as f64, (i % 5) as f64)
                } else {
                    (100.0 + (i % 7) as f64, (i % 5) as f64)
                };
                net.set_coord(addr, x, y);
                let node = PastryNode::new(
                    PastryConfig {
                        leaf_half: 4,
                        max_hops: 64,
                        proximity_aware: proximity,
                    },
                    node_id_from_seed(&format!("prox-{i}")),
                    addr,
                    net.clone() as Arc<dyn Network>,
                );
                let mux = Arc::new(ServiceMux::new());
                mux.register(ServiceId::Pastry, node.clone());
                net.attach(addr, mux);
                node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
                    .unwrap();
                nodes.push(node);
            }
            // Measure the routing cost of a key batch from node 0
            // (cluster A).
            let clock = net.virtual_clock();
            clock.reset();
            for k in 0..50u32 {
                let key = node_id_from_seed(&format!("key-{k}"));
                nodes[0].route(key).unwrap();
            }
            clock.now().as_duration()
        };

        let flat = build(false);
        let proximal = build(true);
        assert!(
            proximal <= flat,
            "proximity routing slower: {proximal:?} > {flat:?}"
        );
    }

    #[test]
    fn rtt_measurement_reflects_topology() {
        use kosha_rpc::LatencyModel;
        use std::time::Duration;

        let net = SimNetwork::new(LatencyModel {
            hop_latency: Duration::from_micros(50),
            per_distance_unit: Duration::from_micros(10),
            bandwidth_bps: u64::MAX,
            server_op_cost: Duration::ZERO,
            loopback_cost: Duration::ZERO,
            timeout: Duration::from_millis(100),
        });
        for (i, x) in [(0u64, 0.0), (1, 1.0), (2, 50.0)] {
            net.set_coord(NodeAddr(i), x, 0.0);
        }
        let mut nodes = Vec::new();
        for i in 0..3u64 {
            let node = PastryNode::new(
                PastryConfig::default(),
                node_id_from_seed(&format!("rtt-{i}")),
                NodeAddr(i),
                net.clone() as Arc<dyn Network>,
            );
            let mux = Arc::new(ServiceMux::new());
            mux.register(ServiceId::Pastry, node.clone());
            net.attach(NodeAddr(i), mux);
            node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
                .unwrap();
            nodes.push(node);
        }
        let near = nodes[0].measure_rtt(NodeAddr(1)).unwrap();
        let far = nodes[0].measure_rtt(NodeAddr(2)).unwrap();
        assert!(far > near, "far {far:?} !> near {near:?}");
        assert!(nodes[0].measure_rtt(NodeAddr(99)).is_none());
    }

    #[test]
    fn route_to_own_id_is_self() {
        let (_net, nodes) = build_ring(10);
        for n in &nodes {
            let (owner, hops) = n.route(n.id()).unwrap();
            assert_eq!(owner.id, n.id());
            assert_eq!(hops, 0);
        }
    }
}
