//! Per-node overlay state: the prefix routing table and the leaf set.

use crate::messages::NodeInfo;
use kosha_id::{Id, DIGITS, DIGIT_BASE};
use kosha_rpc::NodeAddr;
use std::time::Duration;

/// One routing-table entry: a node plus the measured round-trip time to
/// it, when proximity-aware routing is enabled (Pastry's locality
/// heuristic: among equally valid candidates for a slot, keep the
/// closest).
#[derive(Debug, Clone, Copy)]
struct RtEntry {
    info: NodeInfo,
    rtt: Option<Duration>,
}

/// Pastry routing table: `DIGITS` rows × `DIGIT_BASE` columns. The entry at
/// `(row, col)` is a node whose id shares the first `row` digits with this
/// node's id and whose digit `row` equals `col`.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    me: Id,
    rows: Vec<[Option<RtEntry>; DIGIT_BASE]>,
}

impl RoutingTable {
    /// Empty table for a node with id `me`.
    #[must_use]
    pub fn new(me: Id) -> Self {
        RoutingTable {
            me,
            rows: vec![[None; DIGIT_BASE]; DIGITS],
        }
    }

    /// The coordinates `node` would occupy, or `None` for our own id.
    fn slot(&self, id: Id) -> Option<(usize, usize)> {
        if id == self.me {
            return None;
        }
        let row = self.me.shared_prefix_digits(id);
        let col = id.digit(row) as usize;
        Some((row, col))
    }

    /// Inserts `node` if its slot is empty (the first-known node wins
    /// when no proximity metric is supplied). Returns true if inserted.
    pub fn insert(&mut self, node: NodeInfo) -> bool {
        self.insert_with_rtt(node, None)
    }

    /// Inserts `node` with a measured round-trip time. An occupied slot
    /// is taken over when the newcomer is strictly closer than the
    /// incumbent (an unmeasured incumbent counts as infinitely far) —
    /// Pastry's proximity heuristic for routing-table maintenance.
    pub fn insert_with_rtt(&mut self, node: NodeInfo, rtt: Option<Duration>) -> bool {
        match self.slot(node.id) {
            Some((row, col)) => {
                let entry = &mut self.rows[row][col];
                match entry {
                    None => {
                        *entry = Some(RtEntry { info: node, rtt });
                        true
                    }
                    Some(e) if e.info.id == node.id => {
                        // Refresh address/rtt for the same node.
                        *entry = Some(RtEntry {
                            info: node,
                            rtt: rtt.or(e.rtt),
                        });
                        false
                    }
                    Some(e) => {
                        let closer = match (rtt, e.rtt) {
                            (Some(new), Some(old)) => new < old,
                            (Some(_), None) => true,
                            _ => false,
                        };
                        if closer {
                            *entry = Some(RtEntry { info: node, rtt });
                            true
                        } else {
                            false
                        }
                    }
                }
            }
            None => false,
        }
    }

    /// Removes any entry with the given address, returning how many were
    /// removed (an address appears at most once, but a reincarnated node
    /// may briefly exist under two ids).
    pub fn remove_addr(&mut self, addr: NodeAddr) -> usize {
        let mut n = 0;
        for row in &mut self.rows {
            for e in row.iter_mut() {
                if e.map(|x| x.info.addr) == Some(addr) {
                    *e = None;
                    n += 1;
                }
            }
        }
        n
    }

    /// The routing entry for `key`: row = shared prefix length with our
    /// id, column = the key's digit at that row.
    #[must_use]
    pub fn entry_for(&self, key: Id) -> Option<NodeInfo> {
        let row = self.me.shared_prefix_digits(key);
        if row >= DIGITS {
            return None; // key == me
        }
        self.rows[row][key.digit(row) as usize].map(|e| e.info)
    }

    /// All populated entries of row `row`.
    #[must_use]
    pub fn row_entries(&self, row: usize) -> Vec<NodeInfo> {
        if row >= DIGITS {
            return Vec::new();
        }
        self.rows[row].iter().flatten().map(|e| e.info).collect()
    }

    /// Every populated entry in the table.
    #[must_use]
    pub fn all_entries(&self) -> Vec<NodeInfo> {
        self.rows
            .iter()
            .flat_map(|r| r.iter().flatten().map(|e| e.info))
            .collect()
    }

    /// Number of populated entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.iter().flatten().flatten().count()
    }

    /// True if no entries are populated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The leaf set: up to `l/2` nodes on each side of this node's id. With a
/// small ring the two sides may overlap (the same node can be both the
/// clockwise and counter-clockwise neighbor).
#[derive(Debug, Clone)]
pub struct LeafSet {
    me: Id,
    half: usize,
    /// Clockwise neighbors, ascending clockwise distance from `me`.
    cw: Vec<NodeInfo>,
    /// Counter-clockwise neighbors, ascending counter-clockwise distance.
    ccw: Vec<NodeInfo>,
}

impl LeafSet {
    /// Empty leaf set holding up to `l/2 = half` nodes per side.
    #[must_use]
    pub fn new(me: Id, half: usize) -> Self {
        assert!(half >= 1, "leaf set needs at least one node per side");
        LeafSet {
            me,
            half,
            cw: Vec::with_capacity(half + 1),
            ccw: Vec::with_capacity(half + 1),
        }
    }

    /// Inserts `node` into whichever side(s) it belongs to. Returns true
    /// if membership changed.
    pub fn insert(&mut self, node: NodeInfo) -> bool {
        if node.id == self.me {
            return false;
        }
        let mut changed = false;
        changed |= Self::insert_side(&mut self.cw, self.half, node, |n| self.me.cw_distance(n.id));
        changed |= Self::insert_side(&mut self.ccw, self.half, node, |n| {
            n.id.cw_distance(self.me)
        });
        changed
    }

    fn insert_side<F: Fn(&NodeInfo) -> u128>(
        side: &mut Vec<NodeInfo>,
        half: usize,
        node: NodeInfo,
        dist: F,
    ) -> bool {
        if side.iter().any(|n| n.id == node.id) {
            return false;
        }
        let d = dist(&node);
        let pos = side.partition_point(|n| dist(n) < d);
        if pos >= half {
            return false;
        }
        side.insert(pos, node);
        if side.len() > half {
            side.pop();
        }
        true
    }

    /// Removes the node at `addr`; returns the removed infos (possibly the
    /// same node from both sides, deduplicated).
    pub fn remove_addr(&mut self, addr: NodeAddr) -> Vec<NodeInfo> {
        let mut removed = Vec::new();
        for side in [&mut self.cw, &mut self.ccw] {
            if let Some(pos) = side.iter().position(|n| n.addr == addr) {
                let n = side.remove(pos);
                if !removed.iter().any(|r: &NodeInfo| r.id == n.id) {
                    removed.push(n);
                }
            }
        }
        removed
    }

    /// All distinct members, both sides.
    #[must_use]
    pub fn members(&self) -> Vec<NodeInfo> {
        let mut out: Vec<NodeInfo> = Vec::with_capacity(self.cw.len() + self.ccw.len());
        for n in self.cw.iter().chain(self.ccw.iter()) {
            if !out.iter().any(|m| m.id == n.id) {
                out.push(*n);
            }
        }
        out
    }

    /// True if `id` is currently a member.
    #[must_use]
    pub fn contains(&self, id: Id) -> bool {
        self.cw.iter().chain(self.ccw.iter()).any(|n| n.id == id)
    }

    /// Whether the leaf set's id range covers `key`, i.e. the owner of
    /// `key` is guaranteed to be this node or a member. When a side holds
    /// fewer than `half` nodes the set spans every node we have ever seen
    /// in that direction, so coverage is assumed (this makes tiny overlays
    /// route in one hop, matching Section 6.1.1's observation).
    #[must_use]
    pub fn covers(&self, key: Id) -> bool {
        if self.cw.len() < self.half || self.ccw.len() < self.half {
            return true;
        }
        // Overlapping sides mean the leaf set wraps the entire ring (the
        // overlay has at most `l` nodes): every key is covered.
        if self
            .cw
            .iter()
            .any(|n| self.ccw.iter().any(|m| m.id == n.id))
        {
            return true;
        }
        let lo = self.ccw.last().expect("non-empty").id;
        let hi = self.cw.last().expect("non-empty").id;
        // Arc from lo (inclusive) clockwise through me to hi (inclusive).
        key == lo || lo.cw_contains(key, hi)
    }

    /// The member (or `me`, represented by `None`) numerically closest to
    /// `key`, skipping excluded addresses. Returns `None` when this node
    /// itself is closest.
    #[must_use]
    pub fn closest_to(&self, key: Id, exclude: &[NodeAddr]) -> Option<NodeInfo> {
        let mut best: Option<NodeInfo> = None;
        let mut best_id = self.me;
        for n in self.members() {
            if exclude.contains(&n.addr) {
                continue;
            }
            let winner = key.closer_of(best_id, n.id);
            if winner == n.id && winner != best_id {
                best = Some(n);
                best_id = n.id;
            }
        }
        best
    }

    /// Replica placement: the `k` members nearest to this node, alternating
    /// sides (cw first), mirroring the paper's "K replicas of a file on the
    /// neighboring K nodes in the node-identifier space".
    #[must_use]
    pub fn replica_targets(&self, k: usize) -> Vec<NodeInfo> {
        let mut out: Vec<NodeInfo> = Vec::with_capacity(k);
        let mut i = 0;
        while out.len() < k && (i < self.cw.len() || i < self.ccw.len()) {
            for side in [&self.cw, &self.ccw] {
                if out.len() >= k {
                    break;
                }
                if let Some(n) = side.get(i) {
                    if !out.iter().any(|m| m.id == n.id) {
                        out.push(*n);
                    }
                }
            }
            i += 1;
        }
        out
    }

    /// The most distant member on each side (used to fetch fresh leaf sets
    /// during repair).
    #[must_use]
    pub fn extremes(&self) -> Vec<NodeInfo> {
        let mut out = Vec::new();
        if let Some(n) = self.cw.last() {
            out.push(*n);
        }
        if let Some(n) = self.ccw.last() {
            if !out.iter().any(|m: &NodeInfo| m.id == n.id) {
                out.push(*n);
            }
        }
        out
    }

    /// Number of distinct members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members().len()
    }

    /// True if the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cw.is_empty() && self.ccw.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ni(id: u128, addr: u64) -> NodeInfo {
        NodeInfo {
            id: Id(id),
            addr: NodeAddr(addr),
        }
    }

    #[test]
    fn routing_table_slots() {
        let me = Id(0xAB00_0000_0000_0000_0000_0000_0000_0000);
        let mut rt = RoutingTable::new(me);
        // Shares 1 digit (A), differs at row 1 with digit C.
        let n = ni(0xAC00_0000_0000_0000_0000_0000_0000_0000, 1);
        assert!(rt.insert(n));
        assert!(!rt.insert(n));
        assert_eq!(rt.len(), 1);
        assert_eq!(rt.row_entries(1), vec![n]);
        // entry_for a key with the same prefix pattern finds it.
        let key = Id(0xAC12_3400_0000_0000_0000_0000_0000_0000);
        assert_eq!(rt.entry_for(key), Some(n));
        // Our own id can't be inserted.
        assert!(!rt.insert(ni(me.0, 9)));
        assert_eq!(rt.remove_addr(NodeAddr(1)), 1);
        assert!(rt.is_empty());
    }

    #[test]
    fn routing_table_first_wins_but_same_id_refreshes() {
        let me = Id(0);
        let mut rt = RoutingTable::new(me);
        let a = ni(0x1000_0000_0000_0000_0000_0000_0000_0000, 1);
        let b = ni(0x1000_0000_0000_0000_0000_0000_0000_0001, 2);
        assert!(rt.insert(a));
        // b maps to a different slot (longer shared prefix with... actually
        // b shares 0 digits with me and digit0=1, same slot as a): not inserted.
        assert!(!rt.insert(b));
        assert_eq!(rt.all_entries(), vec![a]);
        // Same id, new address: refreshed in place.
        let a2 = ni(a.id.0, 7);
        assert!(!rt.insert(a2));
        assert_eq!(rt.all_entries(), vec![a2]);
    }

    #[test]
    fn leafset_orders_and_caps() {
        let me = Id(100);
        let mut ls = LeafSet::new(me, 2);
        for (id, addr) in [(110u128, 1u64), (120, 2), (130, 3), (90, 4), (80, 5)] {
            ls.insert(ni(id, addr));
        }
        // cw side: 110, 120 (130 evicted); ccw side: 90, 80.
        let m: Vec<u128> = ls.members().iter().map(|n| n.id.0).collect();
        assert!(m.contains(&110) && m.contains(&120) && m.contains(&90) && m.contains(&80));
        assert!(!m.contains(&130));
        assert_eq!(ls.len(), 4);
    }

    #[test]
    fn leafset_small_ring_overlap() {
        let me = Id(100);
        let mut ls = LeafSet::new(me, 4);
        // Only two other nodes: both sides hold both.
        ls.insert(ni(200, 1));
        ls.insert(ni(50, 2));
        assert_eq!(ls.len(), 2);
        // Not full => covers everything.
        assert!(ls.covers(Id(0)));
        assert!(ls.covers(Id(u128::MAX)));
    }

    #[test]
    fn leafset_covers_range_when_full() {
        let me = Id(100);
        let mut ls = LeafSet::new(me, 1);
        ls.insert(ni(150, 1)); // cw
        ls.insert(ni(60, 2)); // ccw
        assert!(ls.covers(Id(100)));
        assert!(ls.covers(Id(120)));
        assert!(ls.covers(Id(60)));
        assert!(ls.covers(Id(150)));
        assert!(!ls.covers(Id(200)));
        assert!(!ls.covers(Id(10)));
    }

    #[test]
    fn closest_to_picks_owner_side() {
        let me = Id(100);
        let mut ls = LeafSet::new(me, 2);
        ls.insert(ni(150, 1));
        ls.insert(ni(60, 2));
        // Key 140: node 150 is closest.
        assert_eq!(ls.closest_to(Id(140), &[]).unwrap().id, Id(150));
        // Key 101: we are closest -> None.
        assert!(ls.closest_to(Id(101), &[]).is_none());
        // Excluding 150, key 140: me (dist 40) beats 60 (dist 80) -> None.
        assert!(ls.closest_to(Id(140), &[NodeAddr(1)]).is_none());
    }

    #[test]
    fn replica_targets_alternate_sides() {
        let me = Id(1000);
        let mut ls = LeafSet::new(me, 3);
        ls.insert(ni(1100, 1));
        ls.insert(ni(1200, 2));
        ls.insert(ni(900, 3));
        ls.insert(ni(800, 4));
        let t = ls.replica_targets(3);
        let ids: Vec<u128> = t.iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![1100, 900, 1200]);
        // Request more than available: capped, distinct.
        let t = ls.replica_targets(10);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn remove_addr_dedups_overlap() {
        let me = Id(100);
        let mut ls = LeafSet::new(me, 4);
        ls.insert(ni(200, 1)); // appears on both sides (small ring)
        let removed = ls.remove_addr(NodeAddr(1));
        assert_eq!(removed.len(), 1);
        assert!(ls.is_empty());
    }

    #[test]
    fn extremes_are_most_distant() {
        let me = Id(100);
        let mut ls = LeafSet::new(me, 2);
        for (id, addr) in [(110u128, 1u64), (120, 2), (90, 3), (80, 4)] {
            ls.insert(ni(id, addr));
        }
        let ex: Vec<u128> = ls.extremes().iter().map(|n| n.id.0).collect();
        assert_eq!(ex, vec![120, 80]);
    }
}
