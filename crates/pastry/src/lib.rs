//! Pastry structured peer-to-peer overlay (Rowstron & Druschel, 2001), the
//! DHT substrate Kosha builds on.
//!
//! The paper reimplemented "a simplified version of the Pastry API" for its
//! prototype; this crate implements the full routing structure in safe
//! Rust:
//!
//! * every node has a uniform random 128-bit nodeId in a circular
//!   identifier space;
//! * each node keeps a **routing table** of `⌈128/b⌉` rows × `2^b` columns
//!   whose row-`r` entries share exactly `r` leading digits with the node,
//!   and a **leaf set** of the `l/2` numerically closest nodes on either
//!   side;
//! * a message with key `k` is routed — here *iteratively*, the caller
//!   querying each hop for the next — to the live node whose id is
//!   numerically closest to `k`, in `O(log N)` hops;
//! * node **join** bootstraps the newcomer's tables from the nodes along
//!   the route to its own id and announces it to every node it learned of;
//! * node **failure** is detected on RPC errors and repaired from the
//!   surviving leaf set; leaf-set membership changes are surfaced to the
//!   application through [`OverlayObserver`] callbacks — exactly the hook
//!   Kosha's replica manager uses ("the p2p component \[...\] informs Kosha
//!   on a node N when nodes in N's leaf set are affected", Section 4.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod messages;
pub mod node;
pub mod state;

pub use messages::{NodeInfo, PastryReply, PastryRequest};
pub use node::{OverlayError, OverlayObserver, PastryConfig, PastryNode};
pub use state::{LeafSet, RoutingTable};
