//! Property tests: every NFS protocol message round-trips the wire
//! exactly, for arbitrary field values.

use kosha_nfs::messages::{NfsReplyFrame, WireDirEntry, WireSetAttr};
use kosha_nfs::{Fh, NfsReply, NfsRequest, NfsStatus};
use kosha_rpc::{WireRead, WireWrite};
use kosha_vfs::{Attr, FileType, SetAttr};
use proptest::prelude::*;

fn arb_fh() -> impl Strategy<Value = Fh> {
    (any::<u64>(), any::<u32>()).prop_map(|(ino, gen)| Fh { ino, gen })
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.#-]{1,32}"
}

fn arb_ftype() -> impl Strategy<Value = FileType> {
    prop_oneof![
        Just(FileType::Regular),
        Just(FileType::Directory),
        Just(FileType::Symlink),
    ]
}

fn arb_attr() -> impl Strategy<Value = Attr> {
    (
        arb_ftype(),
        0u32..0o10000,
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|(ftype, mode, uid, gid, size, nlink, (a, m, c))| Attr {
            ftype,
            mode,
            uid,
            gid,
            size,
            nlink,
            atime: a,
            mtime: m,
            ctime: c,
        })
}

fn arb_sattr() -> impl Strategy<Value = SetAttr> {
    (
        proptest::option::of(0u32..0o10000),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u64>()),
        proptest::option::of(any::<u64>()),
        proptest::option::of(any::<u64>()),
    )
        .prop_map(|(mode, uid, gid, size, atime, mtime)| SetAttr {
            mode,
            uid,
            gid,
            size,
            atime,
            mtime,
        })
}

fn arb_request() -> impl Strategy<Value = NfsRequest> {
    prop_oneof![
        Just(NfsRequest::Null),
        Just(NfsRequest::Mount),
        Just(NfsRequest::Fsstat),
        arb_fh().prop_map(|fh| NfsRequest::Getattr { fh }),
        (arb_fh(), arb_sattr()).prop_map(|(fh, s)| NfsRequest::Setattr {
            fh,
            sattr: WireSetAttr(s)
        }),
        (arb_fh(), arb_name()).prop_map(|(dir, name)| NfsRequest::Lookup { dir, name }),
        arb_fh().prop_map(|fh| NfsRequest::Readlink { fh }),
        (arb_fh(), any::<u64>(), any::<u32>()).prop_map(|(fh, offset, count)| NfsRequest::Read {
            fh,
            offset,
            count
        }),
        (
            arb_fh(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..256)
        )
            .prop_map(|(fh, offset, data)| NfsRequest::Write { fh, offset, data }),
        (
            arb_fh(),
            arb_name(),
            0u32..0o10000,
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(dir, name, mode, uid, gid)| NfsRequest::Create {
                dir,
                name,
                mode,
                uid,
                gid
            }),
        (
            arb_fh(),
            arb_name(),
            any::<u64>(),
            0u32..0o10000,
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(
                |(dir, name, size, mode, uid, gid)| NfsRequest::CreateSized {
                    dir,
                    name,
                    size,
                    mode,
                    uid,
                    gid
                }
            ),
        (
            arb_fh(),
            arb_name(),
            0u32..0o10000,
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(dir, name, mode, uid, gid)| NfsRequest::Mkdir {
                dir,
                name,
                mode,
                uid,
                gid
            }),
        (
            arb_fh(),
            arb_name(),
            arb_name(),
            0u32..0o10000,
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(dir, name, target, mode, uid, gid)| NfsRequest::Symlink {
                dir,
                name,
                target,
                mode,
                uid,
                gid
            }),
        (arb_fh(), arb_name()).prop_map(|(dir, name)| NfsRequest::Remove { dir, name }),
        (arb_fh(), arb_name()).prop_map(|(dir, name)| NfsRequest::Rmdir { dir, name }),
        (arb_fh(), arb_name()).prop_map(|(dir, name)| NfsRequest::RemoveTree { dir, name }),
        (arb_fh(), arb_name(), arb_fh(), arb_name()).prop_map(|(sdir, sname, ddir, dname)| {
            NfsRequest::Rename {
                sdir,
                sname,
                ddir,
                dname,
            }
        }),
        arb_fh().prop_map(|dir| NfsRequest::Readdir { dir }),
        (arb_fh(), any::<u32>(), any::<u32>(), 0u32..8)
            .prop_map(|(fh, uid, gid, want)| NfsRequest::Access { fh, uid, gid, want }),
    ]
}

fn arb_reply() -> impl Strategy<Value = NfsReply> {
    prop_oneof![
        Just(NfsReply::Void),
        arb_fh().prop_map(|fh| NfsReply::Root { fh }),
        arb_attr().prop_map(|a| NfsReply::Attr {
            attr: kosha_nfs::WireAttr(a)
        }),
        (arb_fh(), arb_attr()).prop_map(|(fh, a)| NfsReply::Handle {
            fh,
            attr: kosha_nfs::WireAttr(a)
        }),
        arb_name().prop_map(|target| NfsReply::Target { target }),
        (
            proptest::collection::vec(any::<u8>(), 0..512),
            any::<bool>()
        )
            .prop_map(|(data, eof)| NfsReply::Data { data, eof }),
        any::<u32>().prop_map(|count| NfsReply::Written { count }),
        proptest::collection::vec((arb_name(), arb_fh(), arb_ftype()), 0..16).prop_map(|v| {
            NfsReply::Entries {
                entries: v
                    .into_iter()
                    .map(|(name, fh, ftype)| WireDirEntry { name, fh, ftype })
                    .collect(),
            }
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(capacity, used, free)| {
            NfsReply::Stat {
                capacity,
                used,
                free,
            }
        }),
        (0u32..8).prop_map(|granted| NfsReply::Granted { granted }),
    ]
}

fn arb_status() -> impl Strategy<Value = NfsStatus> {
    prop_oneof![
        Just(NfsStatus::NoEnt),
        Just(NfsStatus::NotDir),
        Just(NfsStatus::IsDir),
        Just(NfsStatus::Exist),
        Just(NfsStatus::NotEmpty),
        Just(NfsStatus::NoSpc),
        Just(NfsStatus::Stale),
        Just(NfsStatus::Inval),
        Just(NfsStatus::NameTooLong),
        Just(NfsStatus::NotSupp),
        Just(NfsStatus::Io),
    ]
}

proptest! {
    #[test]
    fn requests_round_trip(req in arb_request()) {
        let bytes = req.encode();
        prop_assert_eq!(NfsRequest::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn reply_frames_round_trip(frame in prop_oneof![
        arb_reply().prop_map(|r| NfsReplyFrame(Ok(r))),
        arb_status().prop_map(|s| NfsReplyFrame(Err(s))),
    ]) {
        let bytes = frame.encode();
        prop_assert_eq!(NfsReplyFrame::decode(&bytes).unwrap(), frame);
    }

    /// Decoding arbitrary garbage never panics — it returns an error or
    /// (rarely) parses as some valid message.
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = NfsRequest::decode(&bytes);
        let _ = NfsReplyFrame::decode(&bytes);
    }
}
