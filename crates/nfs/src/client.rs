//! Typed blocking NFS client.
//!
//! `koshad` acts "as if it is an NFS client of R" toward every storage
//! node R (Section 4.1.3). This client is that building block: every
//! method takes the target server's address, so one client instance serves
//! both the local loopback store and any remote node.

use crate::messages::{Fh, NfsError, NfsReply, NfsReplyFrame, NfsRequest, NfsResult, WireSetAttr};
use kosha_obs::{Counter, Histogram, Obs};
use kosha_rpc::{Network, NodeAddr, RpcRequest, ServiceId};
use kosha_vfs::{Attr, SetAttr};
use std::sync::Arc;

/// Pre-resolved per-procedure client metrics (one latency histogram per
/// NFS procedure, plus a transport-error counter).
struct ProcMetrics {
    latency: Vec<Arc<Histogram>>,
    errors: Arc<Counter>,
}

impl ProcMetrics {
    fn new(obs: &Obs) -> Self {
        ProcMetrics {
            latency: NfsRequest::PROC_NAMES
                .iter()
                .map(|p| {
                    let name = format!("nfs_client_latency_nanos{{proc=\"{p}\"}}");
                    let h = obs.registry.histogram(&name);
                    // Tail latency per procedure as a recorder series.
                    obs.recorder
                        .watch_histogram_pct(&format!("{name}:p99"), &h, 99);
                    h
                })
                .collect(),
            errors: obs.registry.counter("nfs_client_rpc_errors_total"),
        }
    }
}

/// A directory entry as seen by clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientDirEntry {
    /// Entry name.
    pub name: String,
    /// Entry handle on the serving node.
    pub fh: Fh,
    /// Entry type.
    pub ftype: kosha_vfs::FileType,
}

/// Blocking NFS client bound to a source address.
#[derive(Clone)]
pub struct NfsClient {
    net: Arc<dyn Network>,
    from: NodeAddr,
    service: ServiceId,
    metrics: Option<Arc<ProcMetrics>>,
    /// When observed, client spans (`nfsc:{proc}`) are recorded here.
    obs: Option<Arc<Obs>>,
}

impl NfsClient {
    /// Creates a client that issues RPCs from `from` against nodes' real
    /// NFS servers ([`ServiceId::Nfs`]).
    pub fn new(net: Arc<dyn Network>, from: NodeAddr) -> Self {
        Self::with_service(net, from, ServiceId::Nfs)
    }

    /// Creates a client speaking the NFS protocol to a different service
    /// — e.g. [`ServiceId::KoshaFs`], the koshad loopback server
    /// exporting the virtual `/kosha` file system.
    pub fn with_service(net: Arc<dyn Network>, from: NodeAddr, service: ServiceId) -> Self {
        NfsClient {
            net,
            from,
            service,
            metrics: None,
            obs: None,
        }
    }

    /// Enables per-procedure latency metrics
    /// (`nfs_client_latency_nanos{proc=...}`, measured on the transport
    /// clock) and client-side trace spans (`nfsc:{proc}`), both recorded
    /// into `obs`. Chainable after either constructor.
    #[must_use]
    pub fn observed(mut self, obs: &Arc<Obs>) -> Self {
        self.metrics = Some(Arc::new(ProcMetrics::new(obs)));
        self.obs = Some(Arc::clone(obs));
        self
    }

    /// The address RPCs are issued from.
    #[must_use]
    pub fn from_addr(&self) -> NodeAddr {
        self.from
    }

    fn call(&self, to: NodeAddr, req: &NfsRequest) -> NfsResult<NfsReply> {
        match &self.obs {
            None => self.call_inner(to, req),
            Some(obs) => {
                let clock = self.net.clock();
                obs.tracer.child(
                    || format!("nfsc:{}", req.proc_name()),
                    self.from.0,
                    || clock.now().0,
                    || self.call_inner(to, req),
                )
            }
        }
    }

    fn call_inner(&self, to: NodeAddr, req: &NfsRequest) -> NfsResult<NfsReply> {
        let rpc = RpcRequest::new(self.service, req);
        let resp = match &self.metrics {
            None => self.net.call(self.from, to, rpc)?,
            Some(m) => {
                let clock = self.net.clock();
                let t0 = clock.now();
                let result = self.net.call(self.from, to, rpc);
                m.latency[req.proc_index()].record(clock.now().since_nanos(t0));
                if result.is_err() {
                    m.errors.inc();
                }
                result?
            }
        };
        let frame: NfsReplyFrame = resp.decode()?;
        frame.0.map_err(NfsError::Status)
    }

    fn unexpected<T>() -> NfsResult<T> {
        Err(NfsError::Rpc(kosha_rpc::RpcError::Remote(
            "unexpected reply variant".into(),
        )))
    }

    /// NULL: liveness probe.
    pub fn null(&self, to: NodeAddr) -> NfsResult<()> {
        match self.call(to, &NfsRequest::Null)? {
            NfsReply::Void => Ok(()),
            _ => Self::unexpected(),
        }
    }

    /// MOUNT-lite: fetch the export's root handle.
    pub fn mount(&self, to: NodeAddr) -> NfsResult<Fh> {
        match self.call(to, &NfsRequest::Mount)? {
            NfsReply::Root { fh } => Ok(fh),
            _ => Self::unexpected(),
        }
    }

    /// GETATTR.
    pub fn getattr(&self, to: NodeAddr, fh: Fh) -> NfsResult<Attr> {
        match self.call(to, &NfsRequest::Getattr { fh })? {
            NfsReply::Attr { attr } => Ok(attr.0),
            _ => Self::unexpected(),
        }
    }

    /// SETATTR.
    pub fn setattr(&self, to: NodeAddr, fh: Fh, sattr: SetAttr) -> NfsResult<Attr> {
        match self.call(
            to,
            &NfsRequest::Setattr {
                fh,
                sattr: WireSetAttr(sattr),
            },
        )? {
            NfsReply::Attr { attr } => Ok(attr.0),
            _ => Self::unexpected(),
        }
    }

    /// LOOKUP one component under `dir`.
    pub fn lookup(&self, to: NodeAddr, dir: Fh, name: &str) -> NfsResult<(Fh, Attr)> {
        match self.call(
            to,
            &NfsRequest::Lookup {
                dir,
                name: name.into(),
            },
        )? {
            NfsReply::Handle { fh, attr } => Ok((fh, attr.0)),
            _ => Self::unexpected(),
        }
    }

    /// READLINK.
    pub fn readlink(&self, to: NodeAddr, fh: Fh) -> NfsResult<String> {
        match self.call(to, &NfsRequest::Readlink { fh })? {
            NfsReply::Target { target } => Ok(target),
            _ => Self::unexpected(),
        }
    }

    /// READ.
    pub fn read(
        &self,
        to: NodeAddr,
        fh: Fh,
        offset: u64,
        count: u32,
    ) -> NfsResult<(Vec<u8>, bool)> {
        match self.call(to, &NfsRequest::Read { fh, offset, count })? {
            NfsReply::Data { data, eof } => Ok((data, eof)),
            _ => Self::unexpected(),
        }
    }

    /// WRITE.
    pub fn write(&self, to: NodeAddr, fh: Fh, offset: u64, data: &[u8]) -> NfsResult<u32> {
        match self.call(
            to,
            &NfsRequest::Write {
                fh,
                offset,
                data: data.to_vec(),
            },
        )? {
            NfsReply::Written { count } => Ok(count),
            _ => Self::unexpected(),
        }
    }

    /// CREATE.
    pub fn create(
        &self,
        to: NodeAddr,
        dir: Fh,
        name: &str,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> NfsResult<(Fh, Attr)> {
        match self.call(
            to,
            &NfsRequest::Create {
                dir,
                name: name.into(),
                mode,
                uid,
                gid,
            },
        )? {
            NfsReply::Handle { fh, attr } => Ok((fh, attr.0)),
            _ => Self::unexpected(),
        }
    }

    /// Extension: CREATE of a quota-charged sparse file (simulations).
    #[allow(clippy::too_many_arguments)] // mirrors the NFS procedure arguments
    pub fn create_sized(
        &self,
        to: NodeAddr,
        dir: Fh,
        name: &str,
        size: u64,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> NfsResult<(Fh, Attr)> {
        match self.call(
            to,
            &NfsRequest::CreateSized {
                dir,
                name: name.into(),
                size,
                mode,
                uid,
                gid,
            },
        )? {
            NfsReply::Handle { fh, attr } => Ok((fh, attr.0)),
            _ => Self::unexpected(),
        }
    }

    /// MKDIR.
    pub fn mkdir(
        &self,
        to: NodeAddr,
        dir: Fh,
        name: &str,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> NfsResult<(Fh, Attr)> {
        match self.call(
            to,
            &NfsRequest::Mkdir {
                dir,
                name: name.into(),
                mode,
                uid,
                gid,
            },
        )? {
            NfsReply::Handle { fh, attr } => Ok((fh, attr.0)),
            _ => Self::unexpected(),
        }
    }

    /// SYMLINK.
    #[allow(clippy::too_many_arguments)] // mirrors the NFS procedure arguments
    pub fn symlink(
        &self,
        to: NodeAddr,
        dir: Fh,
        name: &str,
        target: &str,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> NfsResult<(Fh, Attr)> {
        match self.call(
            to,
            &NfsRequest::Symlink {
                dir,
                name: name.into(),
                target: target.into(),
                mode,
                uid,
                gid,
            },
        )? {
            NfsReply::Handle { fh, attr } => Ok((fh, attr.0)),
            _ => Self::unexpected(),
        }
    }

    /// REMOVE.
    pub fn remove(&self, to: NodeAddr, dir: Fh, name: &str) -> NfsResult<()> {
        match self.call(
            to,
            &NfsRequest::Remove {
                dir,
                name: name.into(),
            },
        )? {
            NfsReply::Void => Ok(()),
            _ => Self::unexpected(),
        }
    }

    /// RMDIR.
    pub fn rmdir(&self, to: NodeAddr, dir: Fh, name: &str) -> NfsResult<()> {
        match self.call(
            to,
            &NfsRequest::Rmdir {
                dir,
                name: name.into(),
            },
        )? {
            NfsReply::Void => Ok(()),
            _ => Self::unexpected(),
        }
    }

    /// Extension: recursive subtree removal.
    pub fn remove_tree(&self, to: NodeAddr, dir: Fh, name: &str) -> NfsResult<()> {
        match self.call(
            to,
            &NfsRequest::RemoveTree {
                dir,
                name: name.into(),
            },
        )? {
            NfsReply::Void => Ok(()),
            _ => Self::unexpected(),
        }
    }

    /// RENAME.
    pub fn rename(
        &self,
        to: NodeAddr,
        sdir: Fh,
        sname: &str,
        ddir: Fh,
        dname: &str,
    ) -> NfsResult<()> {
        match self.call(
            to,
            &NfsRequest::Rename {
                sdir,
                sname: sname.into(),
                ddir,
                dname: dname.into(),
            },
        )? {
            NfsReply::Void => Ok(()),
            _ => Self::unexpected(),
        }
    }

    /// READDIR (READDIRPLUS-style).
    pub fn readdir(&self, to: NodeAddr, dir: Fh) -> NfsResult<Vec<ClientDirEntry>> {
        match self.call(to, &NfsRequest::Readdir { dir })? {
            NfsReply::Entries { entries } => Ok(entries
                .into_iter()
                .map(|e| ClientDirEntry {
                    name: e.name,
                    fh: e.fh,
                    ftype: e.ftype,
                })
                .collect()),
            _ => Self::unexpected(),
        }
    }

    /// ACCESS: which of the requested permission bits the identity
    /// holds on the object.
    pub fn access(&self, to: NodeAddr, fh: Fh, uid: u32, gid: u32, want: u32) -> NfsResult<u32> {
        match self.call(to, &NfsRequest::Access { fh, uid, gid, want })? {
            NfsReply::Granted { granted } => Ok(granted),
            _ => Self::unexpected(),
        }
    }

    /// COMMIT: asks the server to make previously written data durable.
    /// The store server acks immediately (writes are synchronous in this
    /// model); the koshad virtual server treats it as a replication
    /// flush barrier.
    pub fn commit(&self, to: NodeAddr, fh: Fh) -> NfsResult<()> {
        match self.call(to, &NfsRequest::Commit { fh })? {
            NfsReply::Void => Ok(()),
            _ => Self::unexpected(),
        }
    }

    /// FSSTAT: `(capacity, used, free)`.
    pub fn fsstat(&self, to: NodeAddr) -> NfsResult<(u64, u64, u64)> {
        match self.call(to, &NfsRequest::Fsstat)? {
            NfsReply::Stat {
                capacity,
                used,
                free,
            } => Ok((capacity, used, free)),
            _ => Self::unexpected(),
        }
    }

    /// LOOKUPPATH (extension): one compound RPC resolving as many
    /// components of `path` under `dir` as the server holds locally.
    /// The returned prefix may be shorter than the requested path; the
    /// caller inspects the last node to tell a stopped walk (symlink or
    /// other non-directory) from a missing entry.
    pub fn lookup_path_nodes(
        &self,
        to: NodeAddr,
        dir: Fh,
        path: &str,
    ) -> NfsResult<Vec<crate::messages::WirePathNode>> {
        match self.call(
            to,
            &NfsRequest::LookupPath {
                dir,
                path: path.into(),
            },
        )? {
            NfsReply::PathNodes { nodes } => Ok(nodes),
            _ => Self::unexpected(),
        }
    }

    /// Resolves `path` under `root` on a single server. Historically this
    /// walked component-by-component with LOOKUP RPCs (Section 4.1.3:
    /// "Looking up the full path by an NFS client requires a sequence of
    /// lookup RPCs"); it now issues one compound LOOKUPPATH and maps a
    /// short walk back to the status the per-component walk would have
    /// hit: a non-directory mid-path is `NotDir`, a missing child is
    /// `NoEnt`.
    pub fn lookup_path(&self, to: NodeAddr, root: Fh, path: &str) -> NfsResult<(Fh, Attr)> {
        let comps = kosha_vfs::split_path(path).map_err(|e| NfsError::Status(e.into()))?;
        if comps.is_empty() {
            return Ok((root, self.getattr(to, root)?));
        }
        let nodes = self.lookup_path_nodes(to, root, &comps.join("/"))?;
        match nodes.last() {
            Some(last) if nodes.len() == comps.len() => Ok((last.fh, last.attr.0.clone())),
            Some(last) if last.attr.0.ftype == kosha_vfs::FileType::Directory => {
                Err(NfsError::Status(crate::messages::NfsStatus::NoEnt))
            }
            Some(_) => Err(NfsError::Status(crate::messages::NfsStatus::NotDir)),
            None => Err(NfsError::Status(crate::messages::NfsStatus::NoEnt)),
        }
    }

    /// Creates every missing directory along `path` with MKDIR RPCs and
    /// returns the final directory handle — how Kosha materializes "all
    /// the missing ancestor directories in the hierarchy on R"
    /// (Section 4.1.4).
    pub fn mkdir_path(
        &self,
        to: NodeAddr,
        root: Fh,
        path: &str,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> NfsResult<Fh> {
        let comps = kosha_vfs::split_path(path).map_err(|e| NfsError::Status(e.into()))?;
        let mut fh = root;
        for c in comps {
            fh = match self.lookup(to, fh, c) {
                Ok((next, _)) => next,
                Err(NfsError::Status(crate::messages::NfsStatus::NoEnt)) => {
                    self.mkdir(to, fh, c, mode, uid, gid)?.0
                }
                Err(e) => return Err(e),
            };
        }
        Ok(fh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::NfsStatus;
    use crate::server::{DiskModel, NfsServer};
    use kosha_rpc::{RpcError, ServiceMux, SimNetwork};
    use kosha_vfs::{FileType, Vfs};

    fn setup() -> (Arc<SimNetwork>, NfsClient, NodeAddr) {
        let net = SimNetwork::new_zero_latency();
        let server_addr = NodeAddr(1);
        let server = NfsServer::new(Vfs::new(1 << 20), net.clock(), DiskModel::zero());
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Nfs, server);
        net.attach(server_addr, mux);
        let client = NfsClient::new(net.clone() as Arc<dyn Network>, NodeAddr(100));
        (net, client, server_addr)
    }

    #[test]
    fn full_file_lifecycle_over_the_wire() {
        let (_net, c, s) = setup();
        c.null(s).unwrap();
        let root = c.mount(s).unwrap();
        let (dir, _) = c.mkdir(s, root, "docs", 0o755, 5, 5).unwrap();
        let (fh, attr) = c.create(s, dir, "r.txt", 0o644, 5, 5).unwrap();
        assert_eq!(attr.size, 0);
        assert_eq!(c.write(s, fh, 0, b"abcdef").unwrap(), 6);
        let (data, eof) = c.read(s, fh, 2, 3).unwrap();
        assert_eq!(data, b"cde");
        assert!(!eof);
        let (fh2, a2) = c.lookup_path(s, root, "/docs/r.txt").unwrap();
        assert_eq!(fh2, fh);
        assert_eq!(a2.size, 6);
        c.rename(s, dir, "r.txt", root, "top.txt").unwrap();
        assert!(matches!(
            c.lookup(s, dir, "r.txt"),
            Err(NfsError::Status(NfsStatus::NoEnt))
        ));
        c.remove(s, root, "top.txt").unwrap();
        c.rmdir(s, root, "docs").unwrap();
        let (_, used, _) = c.fsstat(s).unwrap();
        assert_eq!(used, 0);
    }

    #[test]
    fn mkdir_path_builds_missing_ancestors() {
        let (_net, c, s) = setup();
        let root = c.mount(s).unwrap();
        let leaf = c.mkdir_path(s, root, "/a/b/c", 0o755, 0, 0).unwrap();
        let (found, attr) = c.lookup_path(s, root, "/a/b/c").unwrap();
        assert_eq!(found, leaf);
        assert_eq!(attr.ftype, FileType::Directory);
        // Idempotent.
        let again = c.mkdir_path(s, root, "/a/b/c", 0o755, 0, 0).unwrap();
        assert_eq!(again, leaf);
    }

    #[test]
    fn lookup_path_maps_short_walks_to_statuses() {
        let (_net, c, s) = setup();
        let root = c.mount(s).unwrap();
        let dir = c.mkdir_path(s, root, "/a/b", 0o755, 0, 0).unwrap();
        c.create(s, dir, "f", 0o644, 0, 0).unwrap();
        // A file mid-path fails the same way the per-component walk did.
        assert!(matches!(
            c.lookup_path(s, root, "/a/b/f/deeper"),
            Err(NfsError::Status(NfsStatus::NotDir))
        ));
        // A missing child of an existing directory.
        assert!(matches!(
            c.lookup_path(s, root, "/a/missing/x"),
            Err(NfsError::Status(NfsStatus::NoEnt))
        ));
        // The export root resolves to itself.
        let (fh, attr) = c.lookup_path(s, root, "/").unwrap();
        assert_eq!(fh, root);
        assert_eq!(attr.ftype, FileType::Directory);
    }

    #[test]
    fn symlink_protocol_round_trip() {
        let (_net, c, s) = setup();
        let root = c.mount(s).unwrap();
        let (lfh, _) = c
            .symlink(s, root, "sdirm", "sdirm#42", 0o1777, 0, 0)
            .unwrap();
        assert_eq!(c.readlink(s, lfh).unwrap(), "sdirm#42");
        let entries = c.readdir(s, root).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].ftype, FileType::Symlink);
    }

    #[test]
    fn dead_server_surfaces_rpc_error() {
        let (net, c, s) = setup();
        net.fail_node(s);
        match c.null(s) {
            Err(NfsError::Rpc(RpcError::Unreachable(a))) => assert_eq!(a, s),
            other => panic!("expected unreachable, got {other:?}"),
        }
    }

    #[test]
    fn remove_tree_extension() {
        let (_net, c, s) = setup();
        let root = c.mount(s).unwrap();
        let leaf = c.mkdir_path(s, root, "/t/x/y", 0o755, 0, 0).unwrap();
        let (fh, _) = c.create(s, leaf, "f", 0o644, 0, 0).unwrap();
        c.write(s, fh, 0, &[0u8; 256]).unwrap();
        c.remove_tree(s, root, "t").unwrap();
        assert!(matches!(
            c.lookup(s, root, "t"),
            Err(NfsError::Status(NfsStatus::NoEnt))
        ));
        let (_, used, _) = c.fsstat(s).unwrap();
        assert_eq!(used, 0);
    }
}
