//! Client-side NFS caching: attribute, directory-entry, and whole-file
//! data caches with TTL-based revalidation.
//!
//! Kernel NFS clients cache aggressively — attributes for a few seconds,
//! directory entries, and file data validated on open against the
//! server's mtime ("close-to-open" consistency). The paper leans on
//! this: "The behavior of Kosha in the presence of client caching also
//! remains the same as that of NFS" (§4.1.1). [`CachingClient`] wraps
//! any [`NfsClient`] (a real per-node server *or* the koshad virtual
//! server) with exactly those semantics:
//!
//! * **attributes** are served from cache within `attr_ttl` of the last
//!   fetch, then revalidated with one GETATTR;
//! * **directory entries** (LOOKUP results) are cached, including
//!   negative entries, with the same TTL;
//! * **file data** is cached whole-file up to a size cap and revalidated
//!   by mtime comparison whenever the attribute entry is refreshed — the
//!   close-to-open model;
//! * **mutations** write through and invalidate the affected entries.
//!
//! The consistency trade-off is the standard NFS one: a reader may
//! observe data up to `attr_ttl` stale; tests pin down both the hit
//! behavior and the staleness window.

use crate::client::{ClientDirEntry, NfsClient};
use crate::messages::{Fh, NfsError, NfsResult, NfsStatus};
use kosha_obs::{Counter, Obs};
use kosha_rpc::{Clock, NodeAddr, SimTime};
use kosha_vfs::{Attr, FileType, SetAttr};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cache tuning.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// How long attributes and directory entries are trusted without
    /// revalidation (Linux's default `acregmin` is 3 s).
    pub attr_ttl: Duration,
    /// Cache file contents (whole-file) up to this size; 0 disables the
    /// data cache.
    pub max_cached_file: usize,
    /// Total bytes of file data kept; oldest entries are evicted first.
    pub data_capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            attr_ttl: Duration::from_secs(3),
            max_cached_file: 1 << 20,
            data_capacity: 32 << 20,
        }
    }
}

/// Cache effectiveness counters.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// GETATTRs answered from cache.
    pub attr_hits: AtomicU64,
    /// GETATTRs that went to the server.
    pub attr_misses: AtomicU64,
    /// LOOKUPs answered from the dentry cache (positive or negative).
    pub dentry_hits: AtomicU64,
    /// LOOKUPs that went to the server.
    pub dentry_misses: AtomicU64,
    /// Reads served from the data cache.
    pub data_hits: AtomicU64,
    /// Reads that fetched from the server.
    pub data_misses: AtomicU64,
}

/// Registry-backed mirrors of [`CacheStats`], named
/// `nfs_cache_hits_total{cache=...}` / `nfs_cache_misses_total{cache=...}`.
struct CacheMetrics {
    attr_hits: Arc<Counter>,
    attr_misses: Arc<Counter>,
    dentry_hits: Arc<Counter>,
    dentry_misses: Arc<Counter>,
    data_hits: Arc<Counter>,
    data_misses: Arc<Counter>,
}

impl CacheMetrics {
    fn new(obs: &Obs) -> Self {
        let c = |name: &str| obs.registry.counter(name);
        CacheMetrics {
            attr_hits: c("nfs_cache_hits_total{cache=\"attr\"}"),
            attr_misses: c("nfs_cache_misses_total{cache=\"attr\"}"),
            dentry_hits: c("nfs_cache_hits_total{cache=\"dentry\"}"),
            dentry_misses: c("nfs_cache_misses_total{cache=\"dentry\"}"),
            data_hits: c("nfs_cache_hits_total{cache=\"data\"}"),
            data_misses: c("nfs_cache_misses_total{cache=\"data\"}"),
        }
    }
}

impl CacheStats {
    /// `(attr_hits, attr_misses, dentry_hits, dentry_misses, data_hits,
    /// data_misses)`.
    #[must_use]
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.attr_hits.load(Ordering::Relaxed),
            self.attr_misses.load(Ordering::Relaxed),
            self.dentry_hits.load(Ordering::Relaxed),
            self.dentry_misses.load(Ordering::Relaxed),
            self.data_hits.load(Ordering::Relaxed),
            self.data_misses.load(Ordering::Relaxed),
        )
    }
}

struct AttrEntry {
    attr: Attr,
    fetched: SimTime,
}

enum DentryEntry {
    /// Attributes are NOT stored here — they live in the attribute
    /// cache, the single source of truth, so a write that invalidates
    /// the attr entry cannot leave a stale copy behind a dentry.
    Positive(Fh),
    Negative,
}

struct CachedDentry {
    entry: DentryEntry,
    fetched: SimTime,
}

struct DataEntry {
    data: Vec<u8>,
    /// Server mtime when the copy was taken; a different mtime on
    /// revalidation invalidates the copy.
    mtime: u64,
    /// For LRU-ish eviction.
    last_used: SimTime,
}

/// A caching NFS client bound to one server address.
pub struct CachingClient {
    inner: NfsClient,
    server: NodeAddr,
    clock: Arc<dyn Clock>,
    cfg: CacheConfig,
    // lint: allow(L008) client cache: TTL-expired on access and dropped wholesale by clear(); process-scoped, not node state
    attrs: Mutex<HashMap<Fh, AttrEntry>>,
    // lint: allow(L008) client cache: TTL-expired on access and dropped wholesale by clear()
    dentries: Mutex<HashMap<(Fh, String), CachedDentry>>,
    // lint: allow(L008) client cache: capacity-evicted (oldest-first) on insert and dropped wholesale by clear()
    data: Mutex<HashMap<Fh, DataEntry>>,
    data_bytes: AtomicU64,
    stats: CacheStats,
    metrics: Option<CacheMetrics>,
}

impl CachingClient {
    /// Wraps `inner` (bound to `server`) with caches driven by `clock`.
    pub fn new(
        inner: NfsClient,
        server: NodeAddr,
        clock: Arc<dyn Clock>,
        cfg: CacheConfig,
    ) -> Self {
        CachingClient {
            inner,
            server,
            clock,
            cfg,
            attrs: Mutex::new(HashMap::new()),
            dentries: Mutex::new(HashMap::new()),
            data: Mutex::new(HashMap::new()),
            data_bytes: AtomicU64::new(0),
            stats: CacheStats::default(),
            metrics: None,
        }
    }

    /// Mirrors hit/miss counters into `obs` as
    /// `nfs_cache_{hits,misses}_total{cache=...}`. Chainable after
    /// [`CachingClient::new`].
    #[must_use]
    pub fn observed(mut self, obs: &Obs) -> Self {
        self.metrics = Some(CacheMetrics::new(obs));
        self
    }

    /// Cache counters.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Bumps a local stat and, when observed, its registry mirror.
    fn tally(&self, stat: &AtomicU64, mirror: fn(&CacheMetrics) -> &Counter) {
        stat.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            mirror(m).inc();
        }
    }

    /// Drops every cached entry (umount / failover).
    pub fn flush(&self) {
        self.attrs.lock().clear();
        self.dentries.lock().clear();
        self.data.lock().clear();
        self.data_bytes.store(0, Ordering::Relaxed);
    }

    fn fresh(&self, fetched: SimTime) -> bool {
        self.clock.now().since(fetched) < self.cfg.attr_ttl
    }

    fn remember_attr(&self, fh: Fh, attr: &Attr) {
        // If the file changed on the server, the cached data is stale.
        let mut data = self.data.lock();
        if let Some(entry) = data.get(&fh) {
            if entry.mtime != attr.mtime {
                let freed = entry.data.len() as u64;
                data.remove(&fh);
                self.data_bytes.fetch_sub(freed, Ordering::Relaxed);
            }
        }
        drop(data);
        self.attrs.lock().insert(
            fh,
            AttrEntry {
                attr: attr.clone(),
                fetched: self.clock.now(),
            },
        );
    }

    fn invalidate_fh(&self, fh: Fh) {
        self.attrs.lock().remove(&fh);
        if let Some(e) = self.data.lock().remove(&fh) {
            self.data_bytes
                .fetch_sub(e.data.len() as u64, Ordering::Relaxed);
        }
    }

    fn invalidate_dentry(&self, dir: Fh, name: &str) {
        self.dentries.lock().remove(&(dir, name.to_string()));
    }

    // ---- cached operations -------------------------------------------

    /// MOUNT (uncached).
    pub fn mount(&self) -> NfsResult<Fh> {
        self.inner.mount(self.server)
    }

    /// GETATTR with TTL caching.
    pub fn getattr(&self, fh: Fh) -> NfsResult<Attr> {
        if let Some(e) = self.attrs.lock().get(&fh) {
            if self.fresh(e.fetched) {
                self.tally(&self.stats.attr_hits, |m| &m.attr_hits);
                return Ok(e.attr.clone());
            }
        }
        self.tally(&self.stats.attr_misses, |m| &m.attr_misses);
        let attr = self.inner.getattr(self.server, fh)?;
        self.remember_attr(fh, &attr);
        Ok(attr)
    }

    /// LOOKUP with dentry caching (positive and negative entries).
    pub fn lookup(&self, dir: Fh, name: &str) -> NfsResult<(Fh, Attr)> {
        let key = (dir, name.to_string());
        let cached = {
            let dentries = self.dentries.lock();
            dentries.get(&key).and_then(|d| {
                if self.fresh(d.fetched) {
                    Some(match &d.entry {
                        DentryEntry::Positive(fh) => Some(*fh),
                        DentryEntry::Negative => None,
                    })
                } else {
                    None
                }
            })
        };
        if let Some(hit) = cached {
            self.tally(&self.stats.dentry_hits, |m| &m.dentry_hits);
            return match hit {
                Some(fh) => Ok((fh, self.getattr(fh)?)),
                None => Err(NfsError::Status(NfsStatus::NoEnt)),
            };
        }
        self.tally(&self.stats.dentry_misses, |m| &m.dentry_misses);
        match self.inner.lookup(self.server, dir, name) {
            Ok((fh, attr)) => {
                self.remember_attr(fh, &attr);
                self.dentries.lock().insert(
                    key,
                    CachedDentry {
                        entry: DentryEntry::Positive(fh),
                        fetched: self.clock.now(),
                    },
                );
                Ok((fh, attr))
            }
            Err(NfsError::Status(NfsStatus::NoEnt)) => {
                self.dentries.lock().insert(
                    key,
                    CachedDentry {
                        entry: DentryEntry::Negative,
                        fetched: self.clock.now(),
                    },
                );
                Err(NfsError::Status(NfsStatus::NoEnt))
            }
            Err(e) => Err(e),
        }
    }

    /// Whole-file READ through the data cache, with close-to-open
    /// revalidation: the cached copy is served only while the cached
    /// attributes are fresh or revalidate to the same mtime.
    pub fn read_file(&self, fh: Fh) -> NfsResult<Vec<u8>> {
        // Revalidate attributes (cheap if fresh).
        let attr = self.getattr(fh)?;
        if attr.ftype != FileType::Regular {
            return Err(NfsError::Status(NfsStatus::IsDir));
        }
        {
            let mut data = self.data.lock();
            if let Some(e) = data.get_mut(&fh) {
                if e.mtime == attr.mtime {
                    e.last_used = self.clock.now();
                    self.tally(&self.stats.data_hits, |m| &m.data_hits);
                    return Ok(e.data.clone());
                }
            }
        }
        self.tally(&self.stats.data_misses, |m| &m.data_misses);
        let mut out = Vec::with_capacity(attr.size as usize);
        let mut off = 0u64;
        loop {
            let (chunk, eof) = self.inner.read(self.server, fh, off, 32 * 1024)?;
            off += chunk.len() as u64;
            out.extend_from_slice(&chunk);
            if eof || chunk.is_empty() {
                break;
            }
        }
        if out.len() <= self.cfg.max_cached_file {
            self.evict_to_fit(out.len());
            self.data.lock().insert(
                fh,
                DataEntry {
                    data: out.clone(),
                    mtime: attr.mtime,
                    last_used: self.clock.now(),
                },
            );
            self.data_bytes
                .fetch_add(out.len() as u64, Ordering::Relaxed);
        }
        Ok(out)
    }

    fn evict_to_fit(&self, incoming: usize) {
        let cap = self.cfg.data_capacity as u64;
        let mut data = self.data.lock();
        while self.data_bytes.load(Ordering::Relaxed) + incoming as u64 > cap && !data.is_empty() {
            let oldest = data
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&fh, _)| fh)
                .expect("non-empty");
            if let Some(e) = data.remove(&oldest) {
                self.data_bytes
                    .fetch_sub(e.data.len() as u64, Ordering::Relaxed);
            }
        }
    }

    /// WRITE: write-through, then update caches with the new reality.
    pub fn write(&self, fh: Fh, offset: u64, data: &[u8]) -> NfsResult<u32> {
        let n = self.inner.write(self.server, fh, offset, data)?;
        // The server-side mtime changed; drop cached attr + data.
        self.invalidate_fh(fh);
        Ok(n)
    }

    /// SETATTR: write-through + invalidate.
    pub fn setattr(&self, fh: Fh, sattr: SetAttr) -> NfsResult<Attr> {
        let attr = self.inner.setattr(self.server, fh, sattr)?;
        self.invalidate_fh(fh);
        self.remember_attr(fh, &attr);
        Ok(attr)
    }

    /// CREATE: write-through + prime the caches.
    pub fn create(
        &self,
        dir: Fh,
        name: &str,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> NfsResult<(Fh, Attr)> {
        let (fh, attr) = self.inner.create(self.server, dir, name, mode, uid, gid)?;
        self.remember_attr(fh, &attr);
        self.dentries.lock().insert(
            (dir, name.to_string()),
            CachedDentry {
                entry: DentryEntry::Positive(fh),
                fetched: self.clock.now(),
            },
        );
        Ok((fh, attr))
    }

    /// MKDIR: write-through + prime.
    pub fn mkdir(
        &self,
        dir: Fh,
        name: &str,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> NfsResult<(Fh, Attr)> {
        let (fh, attr) = self.inner.mkdir(self.server, dir, name, mode, uid, gid)?;
        self.remember_attr(fh, &attr);
        self.dentries.lock().insert(
            (dir, name.to_string()),
            CachedDentry {
                entry: DentryEntry::Positive(fh),
                fetched: self.clock.now(),
            },
        );
        Ok((fh, attr))
    }

    /// REMOVE: write-through + invalidate the dentry and object.
    pub fn remove(&self, dir: Fh, name: &str) -> NfsResult<()> {
        self.inner.remove(self.server, dir, name)?;
        if let Some(CachedDentry {
            entry: DentryEntry::Positive(fh),
            ..
        }) = self.dentries.lock().remove(&(dir, name.to_string()))
        {
            self.invalidate_fh(fh);
        }
        self.invalidate_dentry(dir, name);
        Ok(())
    }

    /// RMDIR: write-through + invalidate.
    pub fn rmdir(&self, dir: Fh, name: &str) -> NfsResult<()> {
        self.inner.rmdir(self.server, dir, name)?;
        if let Some(CachedDentry {
            entry: DentryEntry::Positive(fh),
            ..
        }) = self.dentries.lock().remove(&(dir, name.to_string()))
        {
            self.invalidate_fh(fh);
        }
        self.invalidate_dentry(dir, name);
        Ok(())
    }

    /// RENAME: write-through; both dentries invalidated (the object's
    /// handle survives a rename, so its attr/data entries stay valid).
    pub fn rename(&self, sdir: Fh, sname: &str, ddir: Fh, dname: &str) -> NfsResult<()> {
        self.inner.rename(self.server, sdir, sname, ddir, dname)?;
        self.invalidate_dentry(sdir, sname);
        self.invalidate_dentry(ddir, dname);
        Ok(())
    }

    /// READDIR (uncached: listings change shape too easily; kernel
    /// clients cache these with separate, shorter TTLs).
    pub fn readdir(&self, dir: Fh) -> NfsResult<Vec<ClientDirEntry>> {
        self.inner.readdir(self.server, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{DiskModel, NfsServer};
    use kosha_rpc::{LatencyModel, Network, ServiceId, ServiceMux, SimNetwork};
    use kosha_vfs::Vfs;

    const SERVER: NodeAddr = NodeAddr(1);
    const CLIENT: NodeAddr = NodeAddr(2);

    fn setup(ttl: Duration) -> (Arc<SimNetwork>, CachingClient) {
        let net = SimNetwork::new(LatencyModel::zero());
        let server = NfsServer::new(Vfs::new(1 << 24), net.clock(), DiskModel::zero());
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Nfs, server);
        net.attach(SERVER, mux);
        net.attach(CLIENT, Arc::new(ServiceMux::new()));
        let inner = NfsClient::new(net.clone() as Arc<dyn Network>, CLIENT);
        let cc = CachingClient::new(
            inner,
            SERVER,
            net.clock(),
            CacheConfig {
                attr_ttl: ttl,
                ..Default::default()
            },
        );
        (net, cc)
    }

    #[test]
    fn attr_cache_hits_within_ttl() {
        let (net, cc) = setup(Duration::from_secs(3));
        let root = cc.mount().unwrap();
        let (fh, _) = cc.create(root, "f", 0o644, 0, 0).unwrap();
        cc.getattr(fh).unwrap();
        cc.getattr(fh).unwrap();
        cc.getattr(fh).unwrap();
        let (hits, misses, ..) = cc.stats().snapshot();
        assert!(hits >= 3, "hits {hits}"); // create primed the cache
        assert_eq!(misses, 0);
        // Advance past the TTL: next getattr goes to the server.
        net.virtual_clock().advance(Duration::from_secs(4));
        cc.getattr(fh).unwrap();
        let (_, misses, ..) = cc.stats().snapshot();
        assert_eq!(misses, 1);
    }

    #[test]
    fn dentry_cache_covers_negative_lookups() {
        let (_net, cc) = setup(Duration::from_secs(3));
        let root = cc.mount().unwrap();
        assert!(cc.lookup(root, "ghost").is_err());
        assert!(cc.lookup(root, "ghost").is_err());
        let (.., dhits, dmisses, _, _) = {
            let s = cc.stats().snapshot();
            ((), (), s.2, s.3, s.4, s.5)
        };
        assert_eq!(dmisses, 1);
        assert_eq!(dhits, 1);
    }

    #[test]
    fn data_cache_serves_repeat_reads_and_revalidates() {
        let (net, cc) = setup(Duration::from_secs(3));
        let root = cc.mount().unwrap();
        let (fh, _) = cc.create(root, "f", 0o644, 0, 0).unwrap();
        cc.write(fh, 0, b"version one").unwrap();
        assert_eq!(cc.read_file(fh).unwrap(), b"version one");
        assert_eq!(cc.read_file(fh).unwrap(), b"version one");
        let s = cc.stats().snapshot();
        assert_eq!(s.5, 1, "one data miss");
        assert!(s.4 >= 1, "subsequent read hit the cache");

        // Another client writes behind our back. Advance the clock first
        // so the server's mtime actually differs — the same blind spot
        // real NFS clients have with coarse mtime granularity.
        net.virtual_clock().advance(Duration::from_millis(10));
        let other = NfsClient::new(net.clone() as Arc<dyn Network>, NodeAddr(9));
        other.write(SERVER, fh, 0, b"version TWO").unwrap();
        // Within the TTL we may serve stale (the NFS window)…
        assert_eq!(cc.read_file(fh).unwrap(), b"version one");
        // …after the TTL, revalidation sees the new mtime and refetches.
        net.virtual_clock().advance(Duration::from_secs(4));
        assert_eq!(cc.read_file(fh).unwrap(), b"version TWO");
    }

    #[test]
    fn own_writes_are_read_back_immediately() {
        let (_net, cc) = setup(Duration::from_secs(30));
        let root = cc.mount().unwrap();
        let (fh, _) = cc.create(root, "f", 0o644, 0, 0).unwrap();
        cc.write(fh, 0, b"first").unwrap();
        assert_eq!(cc.read_file(fh).unwrap(), b"first");
        cc.write(fh, 0, b"second").unwrap();
        assert_eq!(cc.read_file(fh).unwrap(), b"second");
    }

    #[test]
    fn remove_invalidates_dentry_and_data() {
        let (_net, cc) = setup(Duration::from_secs(30));
        let root = cc.mount().unwrap();
        let (fh, _) = cc.create(root, "f", 0o644, 0, 0).unwrap();
        cc.write(fh, 0, b"bye").unwrap();
        cc.read_file(fh).unwrap();
        cc.remove(root, "f").unwrap();
        assert!(cc.lookup(root, "f").is_err());
        // The handle is gone server-side; the cache must not resurrect it.
        assert!(cc.read_file(fh).is_err());
    }

    #[test]
    fn eviction_respects_capacity() {
        let (net, _) = setup(Duration::from_secs(30));
        let inner = NfsClient::new(net.clone() as Arc<dyn Network>, CLIENT);
        let cc = CachingClient::new(
            inner,
            SERVER,
            net.clock(),
            CacheConfig {
                attr_ttl: Duration::from_secs(30),
                max_cached_file: 1 << 20,
                data_capacity: 3000, // tiny: forces eviction
            },
        );
        let root = cc.mount().unwrap();
        let mut fhs = Vec::new();
        for i in 0..4 {
            let (fh, _) = cc.create(root, &format!("f{i}"), 0o644, 0, 0).unwrap();
            cc.write(fh, 0, &[i as u8; 1000]).unwrap();
            cc.read_file(fh).unwrap();
            fhs.push(fh);
        }
        assert!(
            cc.data_bytes.load(Ordering::Relaxed) <= 3000,
            "cache exceeded capacity: {}",
            cc.data_bytes.load(Ordering::Relaxed)
        );
        // All files still readable (evicted ones refetch).
        for (i, fh) in fhs.iter().enumerate() {
            assert_eq!(cc.read_file(*fh).unwrap(), vec![i as u8; 1000]);
        }
    }
}
