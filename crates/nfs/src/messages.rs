//! NFS procedure set and wire encodings.

use kosha_rpc::{NodeAddr, Reader, RpcError, WireError, WireRead, WireWrite, Writer};
use kosha_vfs::{Attr, DirEntry, FileId, FileType, SetAttr, VfsError};

/// An opaque NFS file handle. Only the issuing server can interpret it;
/// clients (and Kosha's virtual-handle table) treat it as a token. It is
/// the wire form of a [`kosha_vfs::FileId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fh {
    /// Server-side inode number.
    pub ino: u64,
    /// Server-side store generation (stale after a purge).
    pub gen: u32,
}

impl Fh {
    /// Converts from the store's identity type.
    #[must_use]
    pub fn from_file_id(id: FileId) -> Self {
        Fh {
            ino: id.ino,
            gen: id.gen,
        }
    }

    /// Converts back to the store's identity type (server side only).
    #[must_use]
    pub fn to_file_id(self) -> FileId {
        FileId {
            ino: self.ino,
            gen: self.gen,
        }
    }
}

impl WireWrite for Fh {
    fn write(&self, w: &mut Writer) {
        w.u64(self.ino);
        w.u32(self.gen);
    }
}
impl WireRead for Fh {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Fh {
            ino: r.u64()?,
            gen: r.u32()?,
        })
    }
}

/// NFSv3-style status codes (`nfsstat3` subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NfsStatus {
    /// `NFS3ERR_NOENT`
    NoEnt,
    /// `NFS3ERR_NOTDIR`
    NotDir,
    /// `NFS3ERR_ISDIR`
    IsDir,
    /// `NFS3ERR_EXIST`
    Exist,
    /// `NFS3ERR_NOTEMPTY`
    NotEmpty,
    /// `NFS3ERR_NOSPC` — triggers Kosha's directory redirection.
    NoSpc,
    /// `NFS3ERR_STALE`
    Stale,
    /// `NFS3ERR_INVAL`
    Inval,
    /// `NFS3ERR_NAMETOOLONG`
    NameTooLong,
    /// `NFS3ERR_NOTSUPP`
    NotSupp,
    /// `NFS3ERR_IO` (catch-all server failure)
    Io,
}

impl NfsStatus {
    fn tag(self) -> u8 {
        match self {
            NfsStatus::NoEnt => 1,
            NfsStatus::NotDir => 2,
            NfsStatus::IsDir => 3,
            NfsStatus::Exist => 4,
            NfsStatus::NotEmpty => 5,
            NfsStatus::NoSpc => 6,
            NfsStatus::Stale => 7,
            NfsStatus::Inval => 8,
            NfsStatus::NameTooLong => 9,
            NfsStatus::NotSupp => 10,
            NfsStatus::Io => 11,
        }
    }

    fn from_tag(t: u8) -> Result<Self, WireError> {
        Ok(match t {
            1 => NfsStatus::NoEnt,
            2 => NfsStatus::NotDir,
            3 => NfsStatus::IsDir,
            4 => NfsStatus::Exist,
            5 => NfsStatus::NotEmpty,
            6 => NfsStatus::NoSpc,
            7 => NfsStatus::Stale,
            8 => NfsStatus::Inval,
            9 => NfsStatus::NameTooLong,
            10 => NfsStatus::NotSupp,
            11 => NfsStatus::Io,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl From<VfsError> for NfsStatus {
    fn from(e: VfsError) -> Self {
        match e {
            VfsError::NoEnt => NfsStatus::NoEnt,
            VfsError::NotDir => NfsStatus::NotDir,
            VfsError::IsDir => NfsStatus::IsDir,
            VfsError::Exist => NfsStatus::Exist,
            VfsError::NotEmpty => NfsStatus::NotEmpty,
            VfsError::NoSpc => NfsStatus::NoSpc,
            VfsError::Stale => NfsStatus::Stale,
            VfsError::Inval => NfsStatus::Inval,
            VfsError::NameTooLong => NfsStatus::NameTooLong,
            VfsError::NotSupp => NfsStatus::NotSupp,
            VfsError::NotFile => NfsStatus::Inval,
        }
    }
}

impl std::fmt::Display for NfsStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A client-visible NFS failure: a protocol status from the server, or a
/// transport-level error (the signal Kosha's fault handling consumes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsError {
    /// Protocol status returned by a live server.
    Status(NfsStatus),
    /// The server could not be reached (node failure).
    Rpc(RpcError),
}

impl std::fmt::Display for NfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NfsError::Status(s) => write!(f, "nfs status {s}"),
            NfsError::Rpc(e) => write!(f, "nfs transport error: {e}"),
        }
    }
}

impl std::error::Error for NfsError {}

impl From<RpcError> for NfsError {
    fn from(e: RpcError) -> Self {
        NfsError::Rpc(e)
    }
}

impl From<NfsStatus> for NfsError {
    fn from(s: NfsStatus) -> Self {
        NfsError::Status(s)
    }
}

/// Convenience alias for client-side results.
pub type NfsResult<T> = Result<T, NfsError>;

/// Wire form of [`kosha_vfs::Attr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireAttr(pub Attr);

fn ftype_tag(t: FileType) -> u8 {
    match t {
        FileType::Regular => 0,
        FileType::Directory => 1,
        FileType::Symlink => 2,
    }
}

fn ftype_from_tag(t: u8) -> Result<FileType, WireError> {
    Ok(match t {
        0 => FileType::Regular,
        1 => FileType::Directory,
        2 => FileType::Symlink,
        t => return Err(WireError::BadTag(t)),
    })
}

impl WireWrite for WireAttr {
    fn write(&self, w: &mut Writer) {
        let a = &self.0;
        w.u8(ftype_tag(a.ftype));
        w.u32(a.mode);
        w.u32(a.uid);
        w.u32(a.gid);
        w.u64(a.size);
        w.u32(a.nlink);
        w.u64(a.atime);
        w.u64(a.mtime);
        w.u64(a.ctime);
    }
}
impl WireRead for WireAttr {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(WireAttr(Attr {
            ftype: ftype_from_tag(r.u8()?)?,
            mode: r.u32()?,
            uid: r.u32()?,
            gid: r.u32()?,
            size: r.u64()?,
            nlink: r.u32()?,
            atime: r.u64()?,
            mtime: r.u64()?,
            ctime: r.u64()?,
        }))
    }
}

/// Wire form of [`kosha_vfs::SetAttr`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireSetAttr(pub SetAttr);

impl WireWrite for WireSetAttr {
    fn write(&self, w: &mut Writer) {
        let s = &self.0;
        w.option(&s.mode);
        w.option(&s.uid);
        w.option(&s.gid);
        w.option(&s.size);
        w.option(&s.atime);
        w.option(&s.mtime);
    }
}
impl WireRead for WireSetAttr {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(WireSetAttr(SetAttr {
            mode: r.option()?,
            uid: r.option()?,
            gid: r.option()?,
            size: r.option()?,
            atime: r.option()?,
            mtime: r.option()?,
        }))
    }
}

/// Wire form of a directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDirEntry {
    /// Entry name.
    pub name: String,
    /// Entry handle.
    pub fh: Fh,
    /// Entry type.
    pub ftype: FileType,
}

impl From<DirEntry> for WireDirEntry {
    fn from(e: DirEntry) -> Self {
        WireDirEntry {
            name: e.name,
            fh: Fh::from_file_id(e.id),
            ftype: e.ftype,
        }
    }
}

impl WireWrite for WireDirEntry {
    fn write(&self, w: &mut Writer) {
        w.string(&self.name);
        w.value(&self.fh);
        w.u8(ftype_tag(self.ftype));
    }
}
impl WireRead for WireDirEntry {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(WireDirEntry {
            name: r.string()?,
            fh: r.value()?,
            ftype: ftype_from_tag(r.u8()?)?,
        })
    }
}

/// One resolved step of a compound [`NfsRequest::LookupPath`] walk.
///
/// For symlinks the server piggybacks the link target so the client can
/// decide — without a follow-up READLINK — whether the link is a Kosha
/// special link it must chase to another server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePathNode {
    /// Handle of the resolved component.
    pub fh: Fh,
    /// Attributes of the resolved component.
    pub attr: WireAttr,
    /// The link target, present iff the component is a symlink.
    pub link_target: Option<String>,
}

impl WireWrite for WirePathNode {
    fn write(&self, w: &mut Writer) {
        w.value(&self.fh);
        w.value(&self.attr);
        w.option(&self.link_target);
    }
}
impl WireRead for WirePathNode {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(WirePathNode {
            fh: r.value()?,
            attr: r.value()?,
            link_target: r.option()?,
        })
    }
}

/// The NFS procedure set. `Mount` plays the role of the MOUNT protocol's
/// `MNT` (hand out the export's root handle); `CreateSized` and
/// `RemoveTree` are documented extensions used by the simulation harness
/// and the replica manager respectively.
#[derive(Debug, Clone, PartialEq)]
pub enum NfsRequest {
    /// No-op liveness probe (NFSPROC3_NULL).
    Null,
    /// MOUNT-lite: fetch the export's root handle.
    Mount,
    /// Fetch attributes.
    Getattr {
        /// Object handle.
        fh: Fh,
    },
    /// Update attributes.
    Setattr {
        /// Object handle.
        fh: Fh,
        /// Fields to change.
        sattr: WireSetAttr,
    },
    /// Look up `name` in directory `dir`. As in NFSv3, the RPC carries the
    /// *parent handle* and a single component, never a full path
    /// (Section 4.1.3).
    Lookup {
        /// Parent directory handle.
        dir: Fh,
        /// Child name.
        name: String,
    },
    /// Read a symlink target.
    Readlink {
        /// Symlink handle.
        fh: Fh,
    },
    /// Permission probe (NFSv3 ACCESS): which of the requested bits the
    /// identity holds on the object.
    Access {
        /// Object handle.
        fh: Fh,
        /// Requesting uid (AUTH_UNIX credential).
        uid: u32,
        /// Requesting gid.
        gid: u32,
        /// Requested permission bits (`ACCESS_READ|WRITE|EXEC`).
        want: u32,
    },
    /// Read file data.
    Read {
        /// File handle.
        fh: Fh,
        /// Byte offset.
        offset: u64,
        /// Maximum bytes to return.
        count: u32,
    },
    /// Write file data.
    Write {
        /// File handle.
        fh: Fh,
        /// Byte offset.
        offset: u64,
        /// Data to write.
        data: Vec<u8>,
    },
    /// Create a regular file.
    Create {
        /// Parent directory handle.
        dir: Fh,
        /// New file name.
        name: String,
        /// Permission bits.
        mode: u32,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
    },
    /// Extension: create a quota-charged sparse file of `size` bytes
    /// (trace-driven simulations only; see DESIGN.md).
    CreateSized {
        /// Parent directory handle.
        dir: Fh,
        /// New file name.
        name: String,
        /// Logical size in bytes.
        size: u64,
        /// Permission bits.
        mode: u32,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
    },
    /// Create a directory.
    Mkdir {
        /// Parent directory handle.
        dir: Fh,
        /// New directory name.
        name: String,
        /// Permission bits.
        mode: u32,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
    },
    /// Create a symbolic link (Kosha special links included).
    Symlink {
        /// Parent directory handle.
        dir: Fh,
        /// Link name.
        name: String,
        /// Link target.
        target: String,
        /// Permission bits (`0o1777` marks a Kosha special link).
        mode: u32,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
    },
    /// Remove a file or symlink.
    Remove {
        /// Parent directory handle.
        dir: Fh,
        /// Name to remove.
        name: String,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Parent directory handle.
        dir: Fh,
        /// Name to remove.
        name: String,
    },
    /// Extension: recursively remove a subtree (replica teardown and purge
    /// of redirected hierarchies).
    RemoveTree {
        /// Parent directory handle.
        dir: Fh,
        /// Subtree root name.
        name: String,
    },
    /// Rename within the export.
    Rename {
        /// Source directory handle.
        sdir: Fh,
        /// Source name.
        sname: String,
        /// Destination directory handle.
        ddir: Fh,
        /// Destination name.
        dname: String,
    },
    /// List a directory (READDIRPLUS-style: names, handles, types).
    Readdir {
        /// Directory handle.
        dir: Fh,
    },
    /// Filesystem statistics (capacity/used/free), used by Kosha's
    /// redirection to test node fullness.
    Fsstat,
    /// Extension: compound lookup. Walks as many `/`-separated components
    /// of `path` under `dir` as this server can resolve locally and
    /// returns one [`WirePathNode`] per resolved component. The walk
    /// stops early (with the partial prefix) at a symlink or other
    /// non-directory in the middle of the path, leaving the client to
    /// decide whether to chase a special link to another server. An
    /// error on the *first* component is a status reply; errors later
    /// return the successfully resolved prefix.
    LookupPath {
        /// Directory handle the walk starts from.
        dir: Fh,
        /// Relative path, components separated by `/` (no leading slash).
        path: String,
    },
    /// COMMIT (NFSv3): make previously-written data for the file
    /// durable. The plain store server acknowledges immediately (its
    /// writes are synchronous); the koshad loopback server treats it as
    /// a write-behind replication flush barrier (DESIGN.md §11).
    Commit {
        /// File handle.
        fh: Fh,
    },
}

impl NfsRequest {
    /// Stable lower-case procedure labels, indexed by
    /// [`NfsRequest::proc_index`] (used for per-procedure metrics).
    pub const PROC_NAMES: [&'static str; 21] = [
        "null",
        "mount",
        "getattr",
        "setattr",
        "lookup",
        "readlink",
        "access",
        "read",
        "write",
        "create",
        "create_sized",
        "mkdir",
        "symlink",
        "remove",
        "rmdir",
        "remove_tree",
        "rename",
        "readdir",
        "fsstat",
        "lookup_path",
        "commit",
    ];

    /// Dense index of this procedure into [`NfsRequest::PROC_NAMES`].
    #[must_use]
    pub fn proc_index(&self) -> usize {
        match self {
            NfsRequest::Null => 0,
            NfsRequest::Mount => 1,
            NfsRequest::Getattr { .. } => 2,
            NfsRequest::Setattr { .. } => 3,
            NfsRequest::Lookup { .. } => 4,
            NfsRequest::Readlink { .. } => 5,
            NfsRequest::Access { .. } => 6,
            NfsRequest::Read { .. } => 7,
            NfsRequest::Write { .. } => 8,
            NfsRequest::Create { .. } => 9,
            NfsRequest::CreateSized { .. } => 10,
            NfsRequest::Mkdir { .. } => 11,
            NfsRequest::Symlink { .. } => 12,
            NfsRequest::Remove { .. } => 13,
            NfsRequest::Rmdir { .. } => 14,
            NfsRequest::RemoveTree { .. } => 15,
            NfsRequest::Rename { .. } => 16,
            NfsRequest::Readdir { .. } => 17,
            NfsRequest::Fsstat => 18,
            NfsRequest::LookupPath { .. } => 19,
            NfsRequest::Commit { .. } => 20,
        }
    }

    /// Lower-case procedure label, e.g. `"lookup"`.
    #[must_use]
    pub fn proc_name(&self) -> &'static str {
        Self::PROC_NAMES[self.proc_index()]
    }
}

impl WireWrite for NfsRequest {
    fn write(&self, w: &mut Writer) {
        match self {
            NfsRequest::Null => w.u8(0),
            NfsRequest::Mount => w.u8(1),
            NfsRequest::Getattr { fh } => {
                w.u8(2);
                w.value(fh);
            }
            NfsRequest::Setattr { fh, sattr } => {
                w.u8(3);
                w.value(fh);
                w.value(sattr);
            }
            NfsRequest::Lookup { dir, name } => {
                w.u8(4);
                w.value(dir);
                w.string(name);
            }
            NfsRequest::Readlink { fh } => {
                w.u8(5);
                w.value(fh);
            }
            NfsRequest::Read { fh, offset, count } => {
                w.u8(6);
                w.value(fh);
                w.u64(*offset);
                w.u32(*count);
            }
            NfsRequest::Write { fh, offset, data } => {
                w.u8(7);
                w.value(fh);
                w.u64(*offset);
                w.bytes(data);
            }
            NfsRequest::Create {
                dir,
                name,
                mode,
                uid,
                gid,
            } => {
                w.u8(8);
                w.value(dir);
                w.string(name);
                w.u32(*mode);
                w.u32(*uid);
                w.u32(*gid);
            }
            NfsRequest::CreateSized {
                dir,
                name,
                size,
                mode,
                uid,
                gid,
            } => {
                w.u8(9);
                w.value(dir);
                w.string(name);
                w.u64(*size);
                w.u32(*mode);
                w.u32(*uid);
                w.u32(*gid);
            }
            NfsRequest::Mkdir {
                dir,
                name,
                mode,
                uid,
                gid,
            } => {
                w.u8(10);
                w.value(dir);
                w.string(name);
                w.u32(*mode);
                w.u32(*uid);
                w.u32(*gid);
            }
            NfsRequest::Symlink {
                dir,
                name,
                target,
                mode,
                uid,
                gid,
            } => {
                w.u8(11);
                w.value(dir);
                w.string(name);
                w.string(target);
                w.u32(*mode);
                w.u32(*uid);
                w.u32(*gid);
            }
            NfsRequest::Remove { dir, name } => {
                w.u8(12);
                w.value(dir);
                w.string(name);
            }
            NfsRequest::Rmdir { dir, name } => {
                w.u8(13);
                w.value(dir);
                w.string(name);
            }
            NfsRequest::RemoveTree { dir, name } => {
                w.u8(14);
                w.value(dir);
                w.string(name);
            }
            NfsRequest::Rename {
                sdir,
                sname,
                ddir,
                dname,
            } => {
                w.u8(15);
                w.value(sdir);
                w.string(sname);
                w.value(ddir);
                w.string(dname);
            }
            NfsRequest::Readdir { dir } => {
                w.u8(16);
                w.value(dir);
            }
            NfsRequest::Fsstat => w.u8(17),
            NfsRequest::Access { fh, uid, gid, want } => {
                w.u8(18);
                w.value(fh);
                w.u32(*uid);
                w.u32(*gid);
                w.u32(*want);
            }
            NfsRequest::LookupPath { dir, path } => {
                w.u8(19);
                w.value(dir);
                w.string(path);
            }
            NfsRequest::Commit { fh } => {
                w.u8(20);
                w.value(fh);
            }
        }
    }
}

impl WireRead for NfsRequest {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => NfsRequest::Null,
            1 => NfsRequest::Mount,
            2 => NfsRequest::Getattr { fh: r.value()? },
            3 => NfsRequest::Setattr {
                fh: r.value()?,
                sattr: r.value()?,
            },
            4 => NfsRequest::Lookup {
                dir: r.value()?,
                name: r.string()?,
            },
            5 => NfsRequest::Readlink { fh: r.value()? },
            6 => NfsRequest::Read {
                fh: r.value()?,
                offset: r.u64()?,
                count: r.u32()?,
            },
            7 => NfsRequest::Write {
                fh: r.value()?,
                offset: r.u64()?,
                data: r.bytes()?,
            },
            8 => NfsRequest::Create {
                dir: r.value()?,
                name: r.string()?,
                mode: r.u32()?,
                uid: r.u32()?,
                gid: r.u32()?,
            },
            9 => NfsRequest::CreateSized {
                dir: r.value()?,
                name: r.string()?,
                size: r.u64()?,
                mode: r.u32()?,
                uid: r.u32()?,
                gid: r.u32()?,
            },
            10 => NfsRequest::Mkdir {
                dir: r.value()?,
                name: r.string()?,
                mode: r.u32()?,
                uid: r.u32()?,
                gid: r.u32()?,
            },
            11 => NfsRequest::Symlink {
                dir: r.value()?,
                name: r.string()?,
                target: r.string()?,
                mode: r.u32()?,
                uid: r.u32()?,
                gid: r.u32()?,
            },
            12 => NfsRequest::Remove {
                dir: r.value()?,
                name: r.string()?,
            },
            13 => NfsRequest::Rmdir {
                dir: r.value()?,
                name: r.string()?,
            },
            14 => NfsRequest::RemoveTree {
                dir: r.value()?,
                name: r.string()?,
            },
            15 => NfsRequest::Rename {
                sdir: r.value()?,
                sname: r.string()?,
                ddir: r.value()?,
                dname: r.string()?,
            },
            16 => NfsRequest::Readdir { dir: r.value()? },
            17 => NfsRequest::Fsstat,
            18 => NfsRequest::Access {
                fh: r.value()?,
                uid: r.u32()?,
                gid: r.u32()?,
                want: r.u32()?,
            },
            19 => NfsRequest::LookupPath {
                dir: r.value()?,
                path: r.string()?,
            },
            20 => NfsRequest::Commit { fh: r.value()? },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// Successful procedure results. The full reply on the wire is
/// `Result<NfsReply, NfsStatus>` encoded as a status byte plus body.
#[derive(Debug, Clone, PartialEq)]
pub enum NfsReply {
    /// NULL / acknowledgements (SETATTR piggybacks attrs instead).
    Void,
    /// Root handle from `Mount`.
    Root {
        /// The export's root directory handle.
        fh: Fh,
    },
    /// Attributes (GETATTR, SETATTR).
    Attr {
        /// Current attributes.
        attr: WireAttr,
    },
    /// Handle plus attributes (LOOKUP, CREATE, MKDIR, SYMLINK).
    Handle {
        /// Object handle.
        fh: Fh,
        /// Object attributes.
        attr: WireAttr,
    },
    /// Symlink target (READLINK).
    Target {
        /// The link's target string.
        target: String,
    },
    /// File data (READ).
    Data {
        /// Bytes read.
        data: Vec<u8>,
        /// True if the read reached end of file.
        eof: bool,
    },
    /// Bytes written (WRITE).
    Written {
        /// Count of bytes accepted.
        count: u32,
    },
    /// Directory listing (READDIR).
    Entries {
        /// Directory entries in name order.
        entries: Vec<WireDirEntry>,
    },
    /// Granted permission bits (ACCESS).
    Granted {
        /// Subset of the requested bits the identity holds.
        granted: u32,
    },
    /// Filesystem statistics (FSSTAT).
    Stat {
        /// Total bytes contributed.
        capacity: u64,
        /// Bytes in use.
        used: u64,
        /// Bytes free.
        free: u64,
    },
    /// Resolved prefix of a compound walk (LOOKUPPATH), one node per
    /// component in walk order. May be shorter than the requested path.
    PathNodes {
        /// Resolved components, outermost first.
        nodes: Vec<WirePathNode>,
    },
}

impl WireWrite for NfsReply {
    fn write(&self, w: &mut Writer) {
        match self {
            NfsReply::Void => w.u8(0),
            NfsReply::Root { fh } => {
                w.u8(1);
                w.value(fh);
            }
            NfsReply::Attr { attr } => {
                w.u8(2);
                w.value(attr);
            }
            NfsReply::Handle { fh, attr } => {
                w.u8(3);
                w.value(fh);
                w.value(attr);
            }
            NfsReply::Target { target } => {
                w.u8(4);
                w.string(target);
            }
            NfsReply::Data { data, eof } => {
                w.u8(5);
                w.bytes(data);
                w.boolean(*eof);
            }
            NfsReply::Written { count } => {
                w.u8(6);
                w.u32(*count);
            }
            NfsReply::Entries { entries } => {
                w.u8(7);
                w.seq(entries);
            }
            NfsReply::Stat {
                capacity,
                used,
                free,
            } => {
                w.u8(8);
                w.u64(*capacity);
                w.u64(*used);
                w.u64(*free);
            }
            NfsReply::Granted { granted } => {
                w.u8(9);
                w.u32(*granted);
            }
            NfsReply::PathNodes { nodes } => {
                w.u8(10);
                w.seq(nodes);
            }
        }
    }
}

impl WireRead for NfsReply {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => NfsReply::Void,
            1 => NfsReply::Root { fh: r.value()? },
            2 => NfsReply::Attr { attr: r.value()? },
            3 => NfsReply::Handle {
                fh: r.value()?,
                attr: r.value()?,
            },
            4 => NfsReply::Target {
                target: r.string()?,
            },
            5 => NfsReply::Data {
                data: r.bytes()?,
                eof: r.boolean()?,
            },
            6 => NfsReply::Written { count: r.u32()? },
            7 => NfsReply::Entries { entries: r.seq()? },
            8 => NfsReply::Stat {
                capacity: r.u64()?,
                used: r.u64()?,
                free: r.u64()?,
            },
            9 => NfsReply::Granted { granted: r.u32()? },
            10 => NfsReply::PathNodes { nodes: r.seq()? },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// The outermost reply frame: status byte 0 followed by an [`NfsReply`],
/// or a non-zero [`NfsStatus`] tag.
#[derive(Debug, Clone, PartialEq)]
pub struct NfsReplyFrame(pub Result<NfsReply, NfsStatus>);

impl WireWrite for NfsReplyFrame {
    fn write(&self, w: &mut Writer) {
        match &self.0 {
            Ok(reply) => {
                w.u8(0);
                w.value(reply);
            }
            Err(status) => w.u8(status.tag()),
        }
    }
}
impl WireRead for NfsReplyFrame {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.u8()?;
        if tag == 0 {
            Ok(NfsReplyFrame(Ok(r.value()?)))
        } else {
            Ok(NfsReplyFrame(Err(NfsStatus::from_tag(tag)?)))
        }
    }
}

/// Identifies an NFS export on the network: which node, for clarity in
/// multi-store tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExportRef {
    /// Server address.
    pub addr: NodeAddr,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(req: NfsRequest) {
        let b = req.encode();
        assert_eq!(NfsRequest::decode(&b).unwrap(), req);
    }

    #[test]
    fn requests_round_trip() {
        let fh = Fh { ino: 42, gen: 3 };
        rt(NfsRequest::Null);
        rt(NfsRequest::Mount);
        rt(NfsRequest::Getattr { fh });
        rt(NfsRequest::Setattr {
            fh,
            sattr: WireSetAttr(SetAttr {
                mode: Some(0o600),
                size: Some(10),
                ..Default::default()
            }),
        });
        rt(NfsRequest::Lookup {
            dir: fh,
            name: "x".into(),
        });
        rt(NfsRequest::Readlink { fh });
        rt(NfsRequest::Read {
            fh,
            offset: 5,
            count: 100,
        });
        rt(NfsRequest::Write {
            fh,
            offset: 0,
            data: vec![1, 2, 3],
        });
        rt(NfsRequest::Create {
            dir: fh,
            name: "f".into(),
            mode: 0o644,
            uid: 1,
            gid: 2,
        });
        rt(NfsRequest::CreateSized {
            dir: fh,
            name: "s".into(),
            size: 1 << 30,
            mode: 0o644,
            uid: 1,
            gid: 2,
        });
        rt(NfsRequest::Mkdir {
            dir: fh,
            name: "d".into(),
            mode: 0o755,
            uid: 0,
            gid: 0,
        });
        rt(NfsRequest::Symlink {
            dir: fh,
            name: "l".into(),
            target: "t#9".into(),
            mode: 0o1777,
            uid: 0,
            gid: 0,
        });
        rt(NfsRequest::Remove {
            dir: fh,
            name: "f".into(),
        });
        rt(NfsRequest::Rmdir {
            dir: fh,
            name: "d".into(),
        });
        rt(NfsRequest::RemoveTree {
            dir: fh,
            name: "d".into(),
        });
        rt(NfsRequest::Rename {
            sdir: fh,
            sname: "a".into(),
            ddir: fh,
            dname: "b".into(),
        });
        rt(NfsRequest::Readdir { dir: fh });
        rt(NfsRequest::Fsstat);
        rt(NfsRequest::Access {
            fh,
            uid: 10,
            gid: 20,
            want: 0x7,
        });
        rt(NfsRequest::LookupPath {
            dir: fh,
            path: "a/b/c".into(),
        });
        rt(NfsRequest::Commit { fh });
    }

    #[test]
    fn reply_frames_round_trip() {
        let fh = Fh { ino: 7, gen: 1 };
        let attr = WireAttr(Attr::new(FileType::Regular, 0o644, 1, 2, 99));
        for frame in [
            NfsReplyFrame(Ok(NfsReply::Void)),
            NfsReplyFrame(Ok(NfsReply::Root { fh })),
            NfsReplyFrame(Ok(NfsReply::Attr { attr: attr.clone() })),
            NfsReplyFrame(Ok(NfsReply::Handle {
                fh,
                attr: attr.clone(),
            })),
            NfsReplyFrame(Ok(NfsReply::Target {
                target: "x#1".into(),
            })),
            NfsReplyFrame(Ok(NfsReply::Data {
                data: vec![9; 10],
                eof: true,
            })),
            NfsReplyFrame(Ok(NfsReply::Written { count: 10 })),
            NfsReplyFrame(Ok(NfsReply::Entries {
                entries: vec![WireDirEntry {
                    name: "e".into(),
                    fh,
                    ftype: FileType::Symlink,
                }],
            })),
            NfsReplyFrame(Ok(NfsReply::Stat {
                capacity: 100,
                used: 10,
                free: 90,
            })),
            NfsReplyFrame(Ok(NfsReply::Granted { granted: 0x5 })),
            NfsReplyFrame(Ok(NfsReply::PathNodes {
                nodes: vec![
                    WirePathNode {
                        fh,
                        attr: attr.clone(),
                        link_target: None,
                    },
                    WirePathNode {
                        fh,
                        attr: attr.clone(),
                        link_target: Some("@1234#5".into()),
                    },
                ],
            })),
            NfsReplyFrame(Err(NfsStatus::NoSpc)),
            NfsReplyFrame(Err(NfsStatus::Stale)),
        ] {
            let b = frame.encode();
            assert_eq!(NfsReplyFrame::decode(&b).unwrap(), frame);
        }
    }

    #[test]
    fn vfs_error_mapping_is_total() {
        use kosha_vfs::VfsError::*;
        for e in [
            NoEnt,
            NotDir,
            IsDir,
            Exist,
            NotEmpty,
            NoSpc,
            Stale,
            Inval,
            NameTooLong,
            NotSupp,
            NotFile,
        ] {
            let s: NfsStatus = e.into();
            // Every status survives a wire round trip.
            let frame = NfsReplyFrame(Err(s));
            let b = frame.encode();
            assert_eq!(NfsReplyFrame::decode(&b).unwrap(), frame);
        }
    }
}
