//! NFSv3-like protocol, server, and client.
//!
//! Kosha's nodes "are assumed to run NFS servers, so that their contributed
//! disk space can be accessed via NFS" (Section 4), and `koshad` talks to
//! them with "direct NFS RPCs" (Section 5.1). This crate provides that
//! protocol over the [`kosha_rpc`] transport:
//!
//! * [`messages`] — the procedure set (LOOKUP, CREATE, MKDIR, READ, WRITE,
//!   GETATTR, SETATTR, REMOVE, RMDIR, RENAME, READDIR, SYMLINK, READLINK,
//!   FSSTAT, plus a MOUNT-lite handshake), with opaque file handles and
//!   XDR-style wire encodings;
//! * [`server`] — an NFS server exporting one [`kosha_vfs::Vfs`] store,
//!   with a disk-cost model charged to the shared clock (the substitute
//!   for the testbed's 7200 RPM disk);
//! * [`client`] — a typed blocking client, the building block `koshad`
//!   uses for both local (loopback) and remote stores.
//!
//! File handles are opaque exactly as in NFS: "they only have meaning to
//! the NFS server" (Section 4.1.2) — which is what lets Kosha interpose
//! *virtual* handles in front of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod messages;
pub mod server;

pub use cache::{CacheConfig, CacheStats, CachingClient};
pub use client::NfsClient;
pub use messages::{
    Fh, NfsError, NfsReply, NfsRequest, NfsResult, NfsStatus, WireAttr, WirePathNode,
};
pub use server::{DiskModel, NfsServer};
