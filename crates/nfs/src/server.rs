//! The per-node NFS server: one export backed by one [`Vfs`] store.

use crate::messages::{NfsReply, NfsReplyFrame, NfsRequest, WireAttr};
use kosha_obs::{Counter, Obs};
use kosha_rpc::{Clock, NodeAddr, RpcError, RpcHandler, RpcResponse, WireRead};
use kosha_vfs::Vfs;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Disk cost model: the substitute for the testbed's "40 GB 7200 RPM
/// Barracuda Seagate hard disk". Charged to the shared clock for READ and
/// WRITE payloads, plus a small per-metadata-op cost.
#[derive(Debug, Clone)]
pub struct DiskModel {
    /// Sustained transfer rate, bytes/second (~40 MB/s for that drive).
    pub bandwidth_bps: u64,
    /// Cost of one metadata operation (create/remove/rename/…): average
    /// rotational + seek amortized by the FFS cache.
    pub meta_op_cost: Duration,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            bandwidth_bps: 40_000_000,
            meta_op_cost: Duration::from_micros(120),
        }
    }
}

impl DiskModel {
    /// A free disk (logic-only tests).
    #[must_use]
    pub fn zero() -> Self {
        DiskModel {
            bandwidth_bps: u64::MAX,
            meta_op_cost: Duration::ZERO,
        }
    }

    fn transfer(&self, bytes: usize) -> Duration {
        if self.bandwidth_bps == u64::MAX {
            return Duration::ZERO;
        }
        Duration::from_nanos((bytes as u64).saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }
}

/// NFS server exporting a single store. Registered under
/// [`kosha_rpc::ServiceId::Nfs`] on the node's service mux.
pub struct NfsServer {
    vfs: Mutex<Vfs>,
    clock: Arc<dyn Clock>,
    disk: DiskModel,
    /// Per-procedure op counters (`nfs_server_ops_total{proc=...}`),
    /// indexed by [`NfsRequest::proc_index`]. Empty when unobserved.
    ops: Vec<Arc<Counter>>,
    /// When observed, server spans (`nfs:{proc}`) are recorded here,
    /// attributed to `addr`.
    obs: Option<Arc<Obs>>,
    addr: NodeAddr,
}

impl NfsServer {
    /// Creates a server around `vfs`, charging disk costs to `clock`.
    pub fn new(vfs: Vfs, clock: Arc<dyn Clock>, disk: DiskModel) -> Arc<Self> {
        Arc::new(NfsServer {
            vfs: Mutex::new(vfs),
            clock,
            disk,
            ops: Vec::new(),
            obs: None,
            addr: NodeAddr(0),
        })
    }

    /// Like [`NfsServer::new`], but counting every executed procedure
    /// into `obs` as `nfs_server_ops_total{proc=...}` and, when a trace
    /// is active, recording a server span (`nfs:{proc}`) attributed to
    /// the serving node `addr`.
    pub fn new_with_obs(
        vfs: Vfs,
        clock: Arc<dyn Clock>,
        disk: DiskModel,
        obs: &Arc<Obs>,
        addr: NodeAddr,
    ) -> Arc<Self> {
        let ops: Vec<_> = NfsRequest::PROC_NAMES
            .iter()
            .map(|p| {
                let name = format!("nfs_server_ops_total{{proc=\"{p}\"}}");
                let c = obs.registry.counter(&name);
                // Per-procedure rates become flight-recorder series so a
                // sampler can show how the mix evolves, not just totals.
                obs.recorder.watch_counter(&name, &c);
                c
            })
            .collect();
        Arc::new(NfsServer {
            vfs: Mutex::new(vfs),
            clock,
            disk,
            ops,
            obs: Some(Arc::clone(obs)),
            addr,
        })
    }

    /// Direct access to the store, for node-local administration (purging
    /// on reincarnation, seeding test fixtures, inspecting quotas). Not
    /// part of the NFS protocol surface.
    pub fn with_store<R>(&self, f: impl FnOnce(&mut Vfs) -> R) -> R {
        f(&mut self.vfs.lock())
    }

    /// Executes a request locally, bypassing the network but charging the
    /// same disk costs. This is how the co-located `koshad` performs
    /// operations on its own node's store (the paper's koshad and nfsd
    /// share a machine; their interaction is a local RPC).
    pub fn apply(&self, req: NfsRequest) -> Result<NfsReply, crate::messages::NfsStatus> {
        self.execute(req).0
    }

    fn execute(&self, req: NfsRequest) -> NfsReplyFrame {
        match &self.obs {
            None => self.execute_inner(req),
            Some(obs) => {
                let proc = req.proc_name();
                obs.tracer.child(
                    || format!("nfs:{proc}"),
                    self.addr.0,
                    || self.clock.now().0,
                    || self.execute_inner(req),
                )
            }
        }
    }

    fn execute_inner(&self, req: NfsRequest) -> NfsReplyFrame {
        if let Some(c) = self.ops.get(req.proc_index()) {
            c.inc();
        }
        let mut vfs = self.vfs.lock();
        vfs.set_now(self.clock.now().0);
        let disk = &self.disk;
        let result = match req {
            NfsRequest::Null => Ok(NfsReply::Void),
            NfsRequest::Mount => Ok(NfsReply::Root {
                fh: crate::messages::Fh::from_file_id(vfs.root()),
            }),
            NfsRequest::Getattr { fh } => vfs
                .getattr(fh.to_file_id())
                .map(|attr| NfsReply::Attr {
                    attr: WireAttr(attr),
                })
                .map_err(Into::into),
            NfsRequest::Setattr { fh, sattr } => {
                self.clock.advance(disk.meta_op_cost);
                vfs.setattr(fh.to_file_id(), &sattr.0)
                    .map(|attr| NfsReply::Attr {
                        attr: WireAttr(attr),
                    })
                    .map_err(Into::into)
            }
            NfsRequest::Lookup { dir, name } => vfs
                .lookup(dir.to_file_id(), &name)
                .map(|(id, attr)| NfsReply::Handle {
                    fh: crate::messages::Fh::from_file_id(id),
                    attr: WireAttr(attr),
                })
                .map_err(Into::into),
            NfsRequest::Readlink { fh } => vfs
                .readlink(fh.to_file_id())
                .map(|target| NfsReply::Target { target })
                .map_err(Into::into),
            NfsRequest::Read { fh, offset, count } => {
                match vfs.read(fh.to_file_id(), offset, count) {
                    Ok((data, eof)) => {
                        self.clock.advance(disk.transfer(data.len()));
                        Ok(NfsReply::Data { data, eof })
                    }
                    Err(e) => Err(e.into()),
                }
            }
            NfsRequest::Write { fh, offset, data } => {
                self.clock.advance(disk.transfer(data.len()));
                vfs.write(fh.to_file_id(), offset, &data)
                    .map(|count| NfsReply::Written { count })
                    .map_err(Into::into)
            }
            NfsRequest::Create {
                dir,
                name,
                mode,
                uid,
                gid,
            } => {
                self.clock.advance(disk.meta_op_cost);
                vfs.create(dir.to_file_id(), &name, mode, uid, gid)
                    .map(|(id, attr)| NfsReply::Handle {
                        fh: crate::messages::Fh::from_file_id(id),
                        attr: WireAttr(attr),
                    })
                    .map_err(Into::into)
            }
            NfsRequest::CreateSized {
                dir,
                name,
                size,
                mode,
                uid,
                gid,
            } => {
                self.clock.advance(disk.meta_op_cost);
                vfs.create_sized(dir.to_file_id(), &name, size, mode, uid, gid)
                    .map(|(id, attr)| NfsReply::Handle {
                        fh: crate::messages::Fh::from_file_id(id),
                        attr: WireAttr(attr),
                    })
                    .map_err(Into::into)
            }
            NfsRequest::Mkdir {
                dir,
                name,
                mode,
                uid,
                gid,
            } => {
                self.clock.advance(disk.meta_op_cost);
                vfs.mkdir(dir.to_file_id(), &name, mode, uid, gid)
                    .map(|(id, attr)| NfsReply::Handle {
                        fh: crate::messages::Fh::from_file_id(id),
                        attr: WireAttr(attr),
                    })
                    .map_err(Into::into)
            }
            NfsRequest::Symlink {
                dir,
                name,
                target,
                mode,
                uid,
                gid,
            } => {
                self.clock.advance(disk.meta_op_cost);
                vfs.symlink(dir.to_file_id(), &name, &target, mode, uid, gid)
                    .map(|(id, attr)| NfsReply::Handle {
                        fh: crate::messages::Fh::from_file_id(id),
                        attr: WireAttr(attr),
                    })
                    .map_err(Into::into)
            }
            NfsRequest::Remove { dir, name } => {
                self.clock.advance(disk.meta_op_cost);
                vfs.remove(dir.to_file_id(), &name)
                    .map(|()| NfsReply::Void)
                    .map_err(Into::into)
            }
            NfsRequest::Rmdir { dir, name } => {
                self.clock.advance(disk.meta_op_cost);
                vfs.rmdir(dir.to_file_id(), &name)
                    .map(|()| NfsReply::Void)
                    .map_err(Into::into)
            }
            NfsRequest::RemoveTree { dir, name } => {
                self.clock.advance(disk.meta_op_cost);
                vfs.remove_tree(dir.to_file_id(), &name)
                    .map(|_| NfsReply::Void)
                    .map_err(Into::into)
            }
            NfsRequest::Rename {
                sdir,
                sname,
                ddir,
                dname,
            } => {
                self.clock.advance(disk.meta_op_cost);
                vfs.rename(sdir.to_file_id(), &sname, ddir.to_file_id(), &dname)
                    .map(|()| NfsReply::Void)
                    .map_err(Into::into)
            }
            NfsRequest::Readdir { dir } => vfs
                .readdir(dir.to_file_id())
                .map(|entries| NfsReply::Entries {
                    entries: entries.into_iter().map(Into::into).collect(),
                })
                .map_err(Into::into),
            NfsRequest::Access { fh, uid, gid, want } => vfs
                .access(fh.to_file_id(), uid, gid, want)
                .map(|granted| NfsReply::Granted { granted })
                .map_err(Into::into),
            NfsRequest::Commit { fh } => {
                // Writes in this model hit the store synchronously, so a
                // real server has nothing left to stabilize: validate the
                // handle and ack. (The koshad virtual server overrides
                // this with a replication flush barrier.)
                vfs.getattr(fh.to_file_id())
                    .map(|_| NfsReply::Void)
                    .map_err(Into::into)
            }
            NfsRequest::Fsstat => {
                let (capacity, used, free) = vfs.fsstat();
                Ok(NfsReply::Stat {
                    capacity,
                    used,
                    free,
                })
            }
            NfsRequest::LookupPath { dir, path } => {
                // Compound walk: resolve as many components as this store
                // holds. Like LOOKUP, resolution itself is free on the
                // disk model — the win is round trips, not disk time.
                let mut nodes = Vec::new();
                let mut cur = dir.to_file_id();
                let mut failure = None;
                for name in path.split('/').filter(|c| !c.is_empty()) {
                    match vfs.lookup(cur, name) {
                        Ok((id, attr)) => {
                            let link_target = if attr.ftype == kosha_vfs::FileType::Symlink {
                                vfs.readlink(id).ok()
                            } else {
                                None
                            };
                            let stop = attr.ftype != kosha_vfs::FileType::Directory;
                            nodes.push(crate::messages::WirePathNode {
                                fh: crate::messages::Fh::from_file_id(id),
                                attr: WireAttr(attr),
                                link_target,
                            });
                            if stop {
                                break;
                            }
                            cur = id;
                        }
                        Err(e) => {
                            failure = Some(e.into());
                            break;
                        }
                    }
                }
                match failure {
                    // An error on the very first component is the walk's
                    // error; later errors return the resolved prefix and
                    // let the client decide what the partial walk means.
                    Some(status) if nodes.is_empty() => Err(status),
                    _ => Ok(NfsReply::PathNodes { nodes }),
                }
            }
        };
        NfsReplyFrame(result)
    }
}

impl RpcHandler for NfsServer {
    fn handle(&self, _from: NodeAddr, body: &[u8]) -> Result<RpcResponse, RpcError> {
        let req = NfsRequest::decode(body)?;
        Ok(RpcResponse::new(&self.execute(req)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::NfsStatus;
    use kosha_rpc::VirtualClock;

    fn server() -> Arc<NfsServer> {
        NfsServer::new(Vfs::new(1 << 20), VirtualClock::new(), DiskModel::zero())
    }

    fn run(s: &NfsServer, req: NfsRequest) -> Result<NfsReply, NfsStatus> {
        s.execute(req).0
    }

    #[test]
    fn mount_create_write_read() {
        let s = server();
        let NfsReply::Root { fh: root } = run(&s, NfsRequest::Mount).unwrap() else {
            panic!()
        };
        let NfsReply::Handle { fh, .. } = run(
            &s,
            NfsRequest::Create {
                dir: root,
                name: "f".into(),
                mode: 0o644,
                uid: 1,
                gid: 1,
            },
        )
        .unwrap() else {
            panic!()
        };
        let NfsReply::Written { count } = run(
            &s,
            NfsRequest::Write {
                fh,
                offset: 0,
                data: b"payload".to_vec(),
            },
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(count, 7);
        let NfsReply::Data { data, eof } = run(
            &s,
            NfsRequest::Read {
                fh,
                offset: 0,
                count: 100,
            },
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(data, b"payload");
        assert!(eof);
    }

    #[test]
    fn errors_map_to_status() {
        let s = server();
        let NfsReply::Root { fh: root } = run(&s, NfsRequest::Mount).unwrap() else {
            panic!()
        };
        assert_eq!(
            run(
                &s,
                NfsRequest::Lookup {
                    dir: root,
                    name: "missing".into()
                }
            ),
            Err(NfsStatus::NoEnt)
        );
        let stale = crate::messages::Fh { ino: 999, gen: 1 };
        assert_eq!(
            run(&s, NfsRequest::Getattr { fh: stale }),
            Err(NfsStatus::Stale)
        );
    }

    #[test]
    fn quota_returns_nospc() {
        let s = NfsServer::new(Vfs::new(10), VirtualClock::new(), DiskModel::zero());
        let NfsReply::Root { fh: root } = run(&s, NfsRequest::Mount).unwrap() else {
            panic!()
        };
        let NfsReply::Handle { fh, .. } = run(
            &s,
            NfsRequest::Create {
                dir: root,
                name: "f".into(),
                mode: 0o644,
                uid: 0,
                gid: 0,
            },
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(
            run(
                &s,
                NfsRequest::Write {
                    fh,
                    offset: 0,
                    data: vec![0u8; 100],
                }
            ),
            Err(NfsStatus::NoSpc)
        );
    }

    #[test]
    fn disk_model_charges_clock() {
        let clock = VirtualClock::new();
        let s = NfsServer::new(
            Vfs::new(1 << 24),
            clock.clone(),
            DiskModel {
                bandwidth_bps: 1_000_000, // 1 MB/s for visible cost
                meta_op_cost: Duration::from_millis(1),
            },
        );
        let NfsReply::Root { fh: root } = run(&s, NfsRequest::Mount).unwrap() else {
            panic!()
        };
        let before = clock.now();
        let NfsReply::Handle { fh, .. } = run(
            &s,
            NfsRequest::Create {
                dir: root,
                name: "f".into(),
                mode: 0o644,
                uid: 0,
                gid: 0,
            },
        )
        .unwrap() else {
            panic!()
        };
        run(
            &s,
            NfsRequest::Write {
                fh,
                offset: 0,
                data: vec![1u8; 1_000_000],
            },
        )
        .unwrap();
        let elapsed = clock.now().since(before);
        // 1 ms metadata + ~1 s transfer.
        assert!(elapsed >= Duration::from_millis(1000), "{elapsed:?}");
    }

    #[test]
    fn rename_and_readdir_via_protocol() {
        let s = server();
        let NfsReply::Root { fh: root } = run(&s, NfsRequest::Mount).unwrap() else {
            panic!()
        };
        run(
            &s,
            NfsRequest::Mkdir {
                dir: root,
                name: "d".into(),
                mode: 0o755,
                uid: 0,
                gid: 0,
            },
        )
        .unwrap();
        run(
            &s,
            NfsRequest::Create {
                dir: root,
                name: "a".into(),
                mode: 0o644,
                uid: 0,
                gid: 0,
            },
        )
        .unwrap();
        run(
            &s,
            NfsRequest::Rename {
                sdir: root,
                sname: "a".into(),
                ddir: root,
                dname: "b".into(),
            },
        )
        .unwrap();
        let NfsReply::Entries { entries } = run(&s, NfsRequest::Readdir { dir: root }).unwrap()
        else {
            panic!()
        };
        let names: Vec<_> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["b", "d"]);
    }

    #[test]
    fn lookup_path_walks_and_stops_at_symlink() {
        let s = server();
        let NfsReply::Root { fh: root } = run(&s, NfsRequest::Mount).unwrap() else {
            panic!()
        };
        s.with_store(|v| {
            v.mkdir_p("/a/b", 0o755).unwrap();
            let (b, _) = v.resolve("/a/b").unwrap();
            v.create(b, "f", 0o644, 0, 0).unwrap();
            let (a, _) = v.resolve("/a").unwrap();
            v.symlink(a, "link", "@00ff#2", 0o1777, 0, 0).unwrap();
        });

        // Full walk: every component resolves, file terminates the path.
        let NfsReply::PathNodes { nodes } = run(
            &s,
            NfsRequest::LookupPath {
                dir: root,
                path: "a/b/f".into(),
            },
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(nodes.len(), 3);
        assert!(nodes[2].link_target.is_none());

        // A symlink mid-path ends the walk with the link target attached,
        // even though more components were requested.
        let NfsReply::PathNodes { nodes } = run(
            &s,
            NfsRequest::LookupPath {
                dir: root,
                path: "a/link/deeper".into(),
            },
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[1].link_target.as_deref(), Some("@00ff#2"));

        // Missing first component is a status; missing later component
        // returns the resolved prefix.
        assert_eq!(
            run(
                &s,
                NfsRequest::LookupPath {
                    dir: root,
                    path: "nope/x".into()
                }
            ),
            Err(NfsStatus::NoEnt)
        );
        let NfsReply::PathNodes { nodes } = run(
            &s,
            NfsRequest::LookupPath {
                dir: root,
                path: "a/nope/x".into(),
            },
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(nodes.len(), 1);
    }
}
