//! Vendored stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset it uses: `crossbeam::channel` with [`channel::bounded`]
//! and [`channel::unbounded`] MPSC channels. Backed by `std::sync::mpsc`
//! (receivers are single-consumer, which is how this workspace uses them).

pub mod channel {
    //! Multi-producer channels (std-backed subset of `crossbeam-channel`).

    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of a channel.
    pub struct Sender<T>(Flavor<T>);

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Unbounded(s) => Flavor::Unbounded(s.clone()),
                Flavor::Bounded(s) => Flavor::Bounded(s.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking if the channel is bounded and full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
                Flavor::Bounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders have disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message within the timeout.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message ready.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_timeout() {
        let (tx, rx) = bounded(1);
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 9);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
