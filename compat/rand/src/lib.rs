//! Vendored stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `random::<T>()`
//! and `random_range(range)`. The generator is SplitMix64 — statistically
//! solid for simulation workloads, deterministic per seed, but NOT the
//! upstream ChaCha stream (seeded sequences differ from real `rand`) and
//! NOT cryptographically secure.

/// Sampling a value of a type from the "standard" distribution
/// (full-range integers, `[0, 1)` floats, fair bools).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (subset of `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift reduction: bias < 2^-64, irrelevant here.
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in random_range");
                let span = (e as u128) - (s as u128) + 1;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                s + v as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let u = r.random_range(0..5usize);
            assert!(u < 5);
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn floats_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
