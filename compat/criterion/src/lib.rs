//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset its benches use: [`Criterion`], benchmark groups
//! with `bench_function` / `bench_with_input` / `sample_size`,
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark runs `sample_size` timed iterations after one
//! warm-up and prints mean/min wall time per iteration — no statistics
//! engine, plots, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`"name/param"`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Times a closure over the configured number of iterations.
pub struct Bencher {
    samples: usize,
    /// Per-iteration durations of the last `iter` call.
    last: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once to warm up, then `samples` timed iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        self.last.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.last.push(t0.elapsed());
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last: Vec::new(),
    };
    f(&mut b);
    if b.last.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = b.last.iter().sum();
    let mean = total / b.last.len() as u32;
    let min = b.last.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<50} mean {mean:>12.3?}  min {min:>12.3?}  ({} samples)",
        b.last.len()
    );
}

impl Criterion {
    /// Runs an ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&id.to_string(), self.sample_size, &mut f);
    }

    /// Runs an ungrouped parameterized benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&id.to_string(), self.sample_size, &mut |b| f(b, input));
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
    }

    /// Ends the group (printing happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
