//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Strategy for `Vec`s with sizes drawn from a half-open range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `Vec<S::Value>` with `size.start..size.end` elements.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.range_usize(self.size.start, self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet`s with sizes drawn from a half-open range.
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `HashSet<S::Value>` with `size.start..size.end` distinct
/// elements (best-effort: gives up growing after repeated duplicates, so
/// tiny value domains may yield fewer than `size.start` elements).
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy { element, size }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.range_usize(self.size.start, self.size.end);
        let mut set = HashSet::with_capacity(target);
        let mut misses = 0;
        while set.len() < target && misses < 100 {
            if !set.insert(self.element.generate(rng)) {
                misses += 1;
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn vec_sizes_in_range() {
        let s = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::deterministic("v");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn hash_set_is_distinct() {
        let s = hash_set("[a-z]{1,8}", 3..10);
        let mut rng = TestRng::deterministic("h");
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(set.len() < 10);
        }
    }
}
