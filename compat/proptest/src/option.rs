//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `None` about a quarter of the time, otherwise
/// `Some` of the inner strategy's value (matching upstream's Some-bias).
pub struct OptionStrategy<S>(S);

/// Wraps `inner` values in `Option`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}
