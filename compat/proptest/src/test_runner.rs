//! Test configuration and the deterministic RNG driving generation.

/// Per-test configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator (SplitMix64) seeded from the test's full path,
/// so every run of a given test generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG whose stream is a pure function of `name`.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)` (half-open; `hi > lo`).
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty size range");
        lo + self.below((hi - lo) as u64) as usize
    }
}
