//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Generates values of an associated type from a [`TestRng`].
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Types with a canonical "arbitrary value" strategy (see [`crate::any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias toward edge values: upstream's integer strategies
                // weight boundaries, and codec tests rely on hitting them.
                match rng.below(8) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(8) {
            0 => 0,
            1 => u128::MAX,
            2 => 1,
            _ => (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64()),
        }
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated names filesystem-friendly.
        (b' ' + rng.below(95) as u8) as char
    }
}

/// Strategy for [`crate::any`]; generates via [`Arbitrary`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy always yielding a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Boxes a strategy, erasing its concrete type (used by
/// [`crate::prop_oneof!`]; a fn rather than an `as` cast so the value
/// type is inferred from the arm).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice between boxed strategies (see [`crate::prop_oneof!`]).
pub struct Union<V>(Vec<Box<dyn Strategy<Value = V>>>);

impl<V> Union<V> {
    /// New union over `arms` (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let wide = (u128::from(rng.next_u64()) * span) >> 64;
                self.start + wide as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as u128) - (s as u128) + 1;
                let wide = (u128::from(rng.next_u64()) * span) >> 64;
                s + wide as $t
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize);

/// String strategies from a `[class]{m,n}` regex (the only shape the
/// workspace uses). A bare class without a repetition generates one char.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = rng.range_usize(min, max + 1);
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[a-zA-Z0-9_.-]{1,32}`-style patterns into (alphabet, min, max).
/// Also accepts `\PC` (any non-control char), approximated by printable
/// ASCII plus a few multibyte chars so UTF-8 handling gets exercised.
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    if let Some(tail) = pat.strip_prefix("\\PC") {
        let mut chars: Vec<char> = (b' '..=b'~').map(char::from).collect();
        chars.extend(['é', 'λ', '中']);
        let (min, max) = parse_counts(tail)?;
        return Some((chars, min, max));
    }
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let (min, max) = parse_counts(&rest[close + 1..])?;
    Some((chars, min, max))
}

/// Parses a trailing `{m,n}` / `{n}` repetition (empty → exactly one).
fn parse_counts(tail: &str) -> Option<(usize, usize)> {
    if tail.is_empty() {
        return Some((1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((min, max))
}

macro_rules! impl_strategy_tuple {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A / 0);
impl_strategy_tuple!(A / 0, B / 1);
impl_strategy_tuple!(A / 0, B / 1, C / 2);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pattern_parses() {
        let (chars, min, max) = parse_class_pattern("[a-c#0-1]{2,5}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '#', '0', '1']);
        assert_eq!((min, max), (2, 5));
        let (chars, _, _) = parse_class_pattern("[a-zA-Z0-9_.-]{1,32}").unwrap();
        assert!(chars.contains(&'_') && chars.contains(&'.') && chars.contains(&'-'));
        assert!(parse_class_pattern("plain").is_none());
    }

    #[test]
    fn string_strategy_respects_length_and_alphabet() {
        let mut rng = TestRng::deterministic("t");
        for _ in 0..200 {
            let s = "[a-z]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn union_and_map_generate() {
        let mut rng = TestRng::deterministic("u");
        let u = Union::new(vec![
            Box::new(Just(1u8)) as Box<dyn Strategy<Value = u8>>,
            Box::new(Just(2u8)),
        ]);
        let mut seen = [false; 3];
        for _ in 0..50 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
        let doubled = (0u8..4).prop_map(|v| v * 2);
        for _ in 0..20 {
            assert!(doubled.generate(&mut rng) % 2 == 0);
        }
    }
}
