//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of proptest's API its tests use: the [`proptest!`]
//! macro, `any::<T>()`, range / string-regex / tuple / [`Just`] /
//! [`prop_oneof!`] strategies, `prop_map`, `proptest::collection::{vec,
//! hash_set}`, `proptest::option::of`, and the `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number; reruns are deterministic per test name, so failures
//! reproduce exactly), and string strategies support only the
//! `[class]{m,n}` regex shape the workspace uses.

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Creates a strategy producing arbitrary values of `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Runs each property function body against `cases` generated inputs.
///
/// Accepts the upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in proptest::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let __strategy = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of {} failed (deterministic; rerun reproduces it)",
                        __case + 1,
                        __cfg.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discards the current case when `cond` is false. Upstream regenerates;
/// this shim simply skips the case (counts toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Strategy choosing uniformly between the given strategies (all must
/// produce the same value type). Weighted arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}
