//! Common imports for property tests, mirroring `proptest::prelude`.

pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
};
