//! Runtime lock-order checking (the `lockcheck` feature).
//!
//! Every [`crate::Mutex`]/[`crate::RwLock`] acquisition is tagged with
//! its call site (`file:line:column`, via `#[track_caller]`). A
//! thread-local stack tracks the sites this thread currently holds;
//! each acquisition records *held → acquiring* edges in a global
//! lock-order graph. A new edge that closes a cycle means two code
//! paths acquire the same pair of acquisition sites in opposite orders
//! — a potential deadlock — and is reported once per edge pair with
//! both sites named.
//!
//! Granularity is per *site*, not per lock instance: two different
//! locks acquired through the same line share a site. That
//! over-approximates (a reported cycle may involve two instances that
//! are never contended together) but never under-approximates: any
//! real ABBA deadlock between tracked locks appears as a cycle here.
//! A site that nests under itself (`A@s` held while acquiring `B@s`)
//! is reported as a self-cycle, because nothing orders the two
//! instances across threads.
//!
//! The transports additionally call [`note_rpc_call`] on every
//! `Network::call`, so a lock held across a blocking RPC — the runtime
//! counterpart of kosha-lint's L001 — is caught even when the
//! acquisition and the call live in different functions.
//!
//! Violations invoke registered [`report hooks`](add_report_hook)
//! (kosha-rpc uses these to journal `lockcheck_cycle` events into the
//! transport's observability domain) and then, unless
//! [`set_panic_on_violation`]`(false)` was called, panic — which is
//! what makes `cargo test --features lockcheck` assert the whole suite
//! is cycle-free.
//!
//! Internal bookkeeping deliberately uses `std::sync` primitives so
//! the checker never traces itself.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

/// One acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Source file of the acquisition.
    pub file: &'static str,
    /// Line of the `lock()`/`read()`/`write()` call.
    pub line: u32,
    /// Column of that call.
    pub column: u32,
    /// `"mutex"`, `"rwlock.read"`, or `"rwlock.write"`.
    pub kind: &'static str,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} ({})",
            self.file, self.line, self.column, self.kind
        )
    }
}

/// A detected lock-order cycle: acquiring `acquiring` while holding
/// `held` closes a cycle in the global order graph.
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// The site already held by this thread.
    pub held: Site,
    /// The site being acquired when the cycle closed.
    pub acquiring: Site,
    /// The pre-existing path `acquiring → … → held` whose edges some
    /// other code path established (acquisition order chain).
    pub path: Vec<Site>,
}

impl fmt::Display for CycleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lock-order cycle: thread holds {} while acquiring {}; \
             elsewhere the order is {}",
            self.held,
            self.acquiring,
            self.path
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" -> "),
        )
    }
}

/// A checker violation, passed to [report hooks](add_report_hook).
#[derive(Debug, Clone)]
pub enum Violation {
    /// A cycle in the lock-order graph (potential deadlock).
    Cycle(CycleReport),
    /// A blocking RPC issued while this thread holds locks.
    HeldAcrossRpc {
        /// Transport-provided description of the call.
        context: String,
        /// The sites held at the moment of the call.
        held: Vec<Site>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Cycle(c) => c.fmt(f),
            Violation::HeldAcrossRpc { context, held } => write!(
                f,
                "blocking RPC ({context}) while holding {}",
                held.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
        }
    }
}

struct State {
    sites: Vec<Site>,
    ids: HashMap<(usize, u32, u32), u32>,
    edges: HashMap<u32, BTreeSet<u32>>,
    reported: HashSet<(u32, u32)>,
    cycles: Vec<CycleReport>,
}

impl State {
    fn new() -> Self {
        State {
            sites: Vec::new(),
            ids: HashMap::new(),
            edges: HashMap::new(),
            reported: HashSet::new(),
            cycles: Vec::new(),
        }
    }

    fn intern(&mut self, loc: &'static Location<'static>, kind: &'static str) -> u32 {
        let key = (loc.file().as_ptr() as usize, loc.line(), loc.column());
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.sites.len() as u32;
        self.sites.push(Site {
            file: loc.file(),
            line: loc.line(),
            column: loc.column(),
            kind,
        });
        self.ids.insert(key, id);
        id
    }

    /// Shortest edge path `from → … → to`, if one exists (BFS).
    fn path(&self, from: u32, to: u32) -> Option<Vec<u32>> {
        let mut prev: HashMap<u32, u32> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        let mut seen = HashSet::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to {
                let mut chain = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = prev[&cur];
                    chain.push(cur);
                }
                chain.reverse();
                return Some(chain);
            }
            if let Some(next) = self.edges.get(&n) {
                for &m in next {
                    if seen.insert(m) {
                        prev.insert(m, n);
                        queue.push_back(m);
                    }
                }
            }
        }
        None
    }
}

fn state() -> &'static StdMutex<State> {
    static STATE: OnceLock<StdMutex<State>> = OnceLock::new();
    STATE.get_or_init(|| StdMutex::new(State::new()))
}

type Hook = Box<dyn Fn(&Violation) -> bool + Send + Sync>;

fn hooks() -> &'static StdMutex<Vec<Hook>> {
    static HOOKS: OnceLock<StdMutex<Vec<Hook>>> = OnceLock::new();
    HOOKS.get_or_init(|| StdMutex::new(Vec::new()))
}

static PANIC_ON_VIOLATION: AtomicBool = AtomicBool::new(true);

thread_local! {
    static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

fn unpoisoned<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn dispatch(v: &Violation) {
    eprintln!("lockcheck: {v}");
    let mut hs = unpoisoned(hooks().lock());
    hs.retain(|h| h(v));
}

/// Token held by a guard; pops the site from the thread's held stack on
/// drop.
#[derive(Debug)]
pub(crate) struct HeldToken {
    id: u32,
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(i) = h.iter().rposition(|&s| s == self.id) {
                h.remove(i);
            }
        });
    }
}

/// Records an acquisition at `loc` by this thread: interns the site,
/// adds held→acquiring edges, reports any cycle they close, and pushes
/// the site onto the thread's held stack.
///
/// Non-blocking acquisitions (`try_lock`) join the held stack — locks
/// blocking-acquired while they are held still get edges *from* them —
/// but record no edge of their own and trigger no cycle check, because
/// an acquisition that cannot block cannot close a deadlock.
pub(crate) fn on_acquire(
    loc: &'static Location<'static>,
    kind: &'static str,
    blocking: bool,
) -> HeldToken {
    let held: Vec<u32> = if blocking {
        HELD.with(|h| h.borrow().clone())
    } else {
        Vec::new()
    };
    let mut new_cycles: Vec<CycleReport> = Vec::new();
    let id;
    {
        let mut st = unpoisoned(state().lock());
        id = st.intern(loc, kind);
        for &h in &held {
            let fresh = st.edges.entry(h).or_default().insert(id);
            if !fresh || st.reported.contains(&(h, id)) {
                continue;
            }
            // The new edge h→id closes a cycle iff id already reaches h.
            let back = if h == id {
                Some(vec![id])
            } else {
                st.path(id, h)
            };
            if let Some(back) = back {
                st.reported.insert((h, id));
                let report = CycleReport {
                    held: st.sites[h as usize].clone(),
                    acquiring: st.sites[id as usize].clone(),
                    path: back.iter().map(|&s| st.sites[s as usize].clone()).collect(),
                };
                st.cycles.push(report.clone());
                new_cycles.push(report);
            }
        }
    }
    HELD.with(|h| h.borrow_mut().push(id));
    if !new_cycles.is_empty() {
        for c in &new_cycles {
            dispatch(&Violation::Cycle(c.clone()));
        }
        if PANIC_ON_VIOLATION.load(Ordering::Relaxed) {
            panic!("lockcheck: {}", new_cycles[0]);
        }
    }
    HeldToken { id }
}

/// The acquisition sites this thread currently holds, oldest first.
#[must_use]
pub fn held_sites() -> Vec<Site> {
    let ids: Vec<u32> = HELD.with(|h| h.borrow().clone());
    if ids.is_empty() {
        return Vec::new();
    }
    let st = unpoisoned(state().lock());
    ids.iter().map(|&i| st.sites[i as usize].clone()).collect()
}

/// Number of locks this thread currently holds.
#[must_use]
pub fn held_count() -> usize {
    HELD.with(|h| h.borrow().len())
}

/// Called by transports on every blocking RPC. Returns the held sites
/// (and dispatches a [`Violation::HeldAcrossRpc`] to hooks) when the
/// calling thread holds any tracked lock; the transport journals the
/// violation and then asserts according to [`panic_on_violation`].
#[must_use]
pub fn note_rpc_call(context: &str) -> Option<Vec<Site>> {
    let held = held_sites();
    if held.is_empty() {
        return None;
    }
    dispatch(&Violation::HeldAcrossRpc {
        context: context.to_string(),
        held: held.clone(),
    });
    Some(held)
}

/// All cycles detected so far (process-wide).
#[must_use]
pub fn cycles() -> Vec<CycleReport> {
    unpoisoned(state().lock()).cycles.clone()
}

/// Drains the detected-cycle list (test isolation helper).
#[must_use]
pub fn take_cycles() -> Vec<CycleReport> {
    std::mem::take(&mut unpoisoned(state().lock()).cycles)
}

/// Whether violations panic (default `true`, which is what lets the
/// test suite assert "zero cycles" by simply passing). Provocation
/// tests flip this off and inspect [`cycles`]/hooks instead.
#[must_use]
pub fn panic_on_violation() -> bool {
    PANIC_ON_VIOLATION.load(Ordering::Relaxed)
}

/// Sets the panic-on-violation flag, returning the previous value.
pub fn set_panic_on_violation(on: bool) -> bool {
    PANIC_ON_VIOLATION.swap(on, Ordering::Relaxed)
}

/// Registers a violation hook. The hook returns `false` to deregister
/// itself (e.g. when its captured observability domain is gone).
pub fn add_report_hook(hook: impl Fn(&Violation) -> bool + Send + Sync + 'static) {
    let mut hs = unpoisoned(hooks().lock());
    hs.push(Box::new(hook));
}
