//! Vendored stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it uses: [`Mutex`] and [`RwLock`] with
//! non-poisoning guards. Backed by `std::sync`; a poisoned std lock (a
//! panic while holding the guard) is recovered into the inner value,
//! matching parking_lot's no-poisoning semantics.
//!
//! With the `lockcheck` feature enabled, every acquisition is recorded
//! in a global lock-order graph keyed by call site and checked for
//! cycles (potential deadlocks) — see the [`lockcheck`] module. Guards
//! are this crate's own types so they can carry the held-site token;
//! they deref to the protected value exactly like the real crate's.

#[cfg(feature = "lockcheck")]
pub mod lockcheck;

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Non-poisoning mutex with the `parking_lot::Mutex` API subset.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard providing exclusive access to a [`Mutex`]'s value.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    _held: lockcheck::HeldToken,
    inner: sync::MutexGuard<'a, T>,
}

/// Guard providing shared access to a [`RwLock`]'s value.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    _held: lockcheck::HeldToken,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Guard providing exclusive access to a [`RwLock`]'s value.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    _held: lockcheck::HeldToken,
    inner: sync::RwLockWriteGuard<'a, T>,
}

macro_rules! guard_impls {
    ($guard:ident, mut) => {
        guard_impls!($guard);
        impl<T: ?Sized> DerefMut for $guard<'_, T> {
            fn deref_mut(&mut self) -> &mut T {
                &mut self.inner
            }
        }
    };
    ($guard:ident) => {
        impl<T: ?Sized> Deref for $guard<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }
        impl<T: ?Sized + fmt::Debug> fmt::Debug for $guard<'_, T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                (**self).fmt(f)
            }
        }
        impl<T: ?Sized + fmt::Display> fmt::Display for $guard<'_, T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                (**self).fmt(f)
            }
        }
    };
}

guard_impls!(MutexGuard, mut);
guard_impls!(RwLockReadGuard);
guard_impls!(RwLockWriteGuard, mut);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        let _held = lockcheck::on_acquire(std::panic::Location::caller(), "mutex", true);
        let inner = match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            #[cfg(feature = "lockcheck")]
            _held,
            inner,
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.0.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            #[cfg(feature = "lockcheck")]
            _held: lockcheck::on_acquire(std::panic::Location::caller(), "mutex.try", false),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock` API
/// subset.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        let _held = lockcheck::on_acquire(std::panic::Location::caller(), "rwlock.read", true);
        let inner = match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard {
            #[cfg(feature = "lockcheck")]
            _held,
            inner,
        }
    }

    /// Acquires exclusive write access. Never poisons.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        let _held = lockcheck::on_acquire(std::panic::Location::caller(), "rwlock.write", true);
        let inner = match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard {
            #[cfg(feature = "lockcheck")]
            _held,
            inner,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
