//! Vendored stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it uses: [`Mutex`] and [`RwLock`] with
//! non-poisoning guards. Backed by `std::sync`; a poisoned std lock (a
//! panic while holding the guard) is recovered into the inner value,
//! matching parking_lot's no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with the `parking_lot::Mutex` API subset.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock` API
/// subset.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
