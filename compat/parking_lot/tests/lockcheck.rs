//! Provocation tests for the `lockcheck` runtime checker.
//!
//! All tests in this binary disable panic-on-violation up front and
//! never restore it (the flag is process-global and tests run in
//! parallel); assertions go through [`lockcheck::cycles`] and report
//! hooks instead. Each test uses its own helper acquisition sites so
//! the shared lock-order graph cannot bleed findings across tests.

#![cfg(feature = "lockcheck")]

use std::sync::{Arc, Mutex as StdMutex};

use parking_lot::{lockcheck, Mutex, MutexGuard};

/// Fixed acquisition site X: a deadlock at site granularity means the
/// same two sites are taken in opposite orders, so the crossed orders
/// below must route through shared helpers rather than inline locks.
fn lock_x(m: &Mutex<u32>) -> MutexGuard<'_, u32> {
    m.lock()
}

/// Fixed acquisition site Y.
fn lock_y(m: &Mutex<u32>) -> MutexGuard<'_, u32> {
    m.lock()
}

fn cycle_between(file: &str, a: &str, b: &str) -> Option<lockcheck::CycleReport> {
    lockcheck::cycles().into_iter().find(|c| {
        c.held.file.ends_with(file)
            && ((c.held.kind == a && c.acquiring.kind == b)
                || (c.held.kind == b && c.acquiring.kind == a))
    })
}

#[test]
fn abba_cycle_is_reported_with_both_sites() {
    let _ = lockcheck::set_panic_on_violation(false);
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);
    {
        let _first = lock_x(&a);
        let _second = lock_y(&b); // edge X -> Y
    }
    {
        let _first = lock_y(&b);
        let _second = lock_x(&a); // edge Y -> X: closes the cycle
    }
    let report = lockcheck::cycles()
        .into_iter()
        .find(|c| c.held.file.ends_with("lockcheck.rs") && c.held.line != c.acquiring.line)
        .expect("ABBA acquisition order must be reported as a cycle");
    // Both acquisition sites are named, and they are the two helpers.
    let lines = [report.held.line, report.acquiring.line];
    assert!(report.acquiring.file.ends_with("lockcheck.rs"));
    assert_ne!(lines[0], lines[1]);
    let text = report.to_string();
    assert!(text.contains("lock-order cycle"), "{text}");
    assert!(text.contains(&format!(":{}:", lines[0])), "{text}");
    assert!(text.contains(&format!(":{}:", lines[1])), "{text}");
}

#[test]
fn consistent_order_reports_nothing() {
    let _ = lockcheck::set_panic_on_violation(false);
    // Distinct kinds give this test a cycle fingerprint that cannot be
    // produced by the other tests sharing the global graph.
    let outer = parking_lot::RwLock::new(0u32);
    let inner = Mutex::new(0u32);
    for _ in 0..3 {
        let _o = outer.read();
        let _i = inner.lock();
    }
    assert!(
        cycle_between("lockcheck.rs", "rwlock.read", "mutex").is_none(),
        "same-order acquisitions must not form a cycle",
    );
}

#[test]
fn held_stack_tracks_guard_lifetimes() {
    let _ = lockcheck::set_panic_on_violation(false);
    assert_eq!(lockcheck::held_count(), 0);
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);
    {
        let _ga = a.lock();
        assert_eq!(lockcheck::held_count(), 1);
        {
            let _gb = b.lock();
            assert_eq!(lockcheck::held_count(), 2);
        }
        assert_eq!(lockcheck::held_count(), 1);
    }
    assert_eq!(lockcheck::held_count(), 0);
    assert!(lockcheck::held_sites().is_empty());
}

#[test]
fn rpc_call_gate_flags_held_locks() {
    let _ = lockcheck::set_panic_on_violation(false);
    let seen: Arc<StdMutex<Vec<String>>> = Arc::new(StdMutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    lockcheck::add_report_hook(move |v| {
        if let lockcheck::Violation::HeldAcrossRpc { context, held } = v {
            if context == "gate-test" {
                sink.lock().unwrap().push(format!("{} locks", held.len()));
            }
        }
        true
    });

    assert!(lockcheck::note_rpc_call("gate-test").is_none());
    let m = Mutex::new(0u32);
    let _g = m.lock();
    let held = lockcheck::note_rpc_call("gate-test").expect("lock is held across the call");
    assert_eq!(held.len(), 1);
    assert!(held[0].file.ends_with("lockcheck.rs"));
    assert_eq!(seen.lock().unwrap().as_slice(), ["1 locks"]);
}

#[test]
fn try_lock_does_not_create_blocking_edges() {
    let _ = lockcheck::set_panic_on_violation(false);
    fn try_t(m: &Mutex<u32>) -> MutexGuard<'_, u32> {
        m.try_lock().expect("uncontended")
    }
    fn lock_u(m: &Mutex<u32>) -> MutexGuard<'_, u32> {
        m.lock()
    }
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);
    {
        let _t = try_t(&a);
        let _u = lock_u(&b); // edge T -> U (T held, U blocking)
    }
    {
        let _u = lock_u(&b);
        let _t = try_t(&a); // try_lock never blocks: no U -> T edge
    }
    assert!(
        cycle_between("lockcheck.rs", "mutex.try", "mutex").is_none(),
        "a try_lock acquisition cannot close a deadlock cycle",
    );
}
