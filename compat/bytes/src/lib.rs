//! Vendored stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset it uses: cheaply-cloneable immutable [`Bytes`]
//! (`Arc<[u8]>`-backed), a growable [`BytesMut`], and the [`Buf`] /
//! [`BufMut`] traits with the little-endian accessors the wire codec
//! relies on. Zero-copy splitting is not implemented — `freeze` copies
//! once — which is fine for this workspace's message-encode use.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply-cloneable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Creates a buffer from a static slice.
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Number of bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with `cap` bytes reserved.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Advances past `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Copies `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Reads a little-endian `u128`.
    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write sink for bytes (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u128`.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(7);
        m.put_u16_le(300);
        m.put_u32_le(1 << 20);
        m.put_u64_le(u64::MAX);
        m.put_u128_le(42);
        m.put_slice(b"xy");
        let b = m.freeze();
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 1 << 20);
        assert_eq!(r.get_u64_le(), u64::MAX);
        assert_eq!(r.get_u128_le(), 42);
        let mut out = [0u8; 2];
        r.copy_to_slice(&mut out);
        assert_eq!(&out, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(&*b, &*c);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
