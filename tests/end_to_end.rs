//! Cross-crate integration: the full stack (overlay + NFS + koshad +
//! simulation harness) exercised together.

use kosha::KoshaConfig;
use kosha_rpc::{Clock, LatencyModel};
use kosha_sim::cluster::{ClusterParams, SimCluster};
use kosha_sim::mab::{run_mab, MabParams};
use kosha_sim::{FsTrace, TraceParams};
use kosha_vfs::FileType;

fn cluster(nodes: usize, level: usize, replicas: usize) -> SimCluster {
    SimCluster::build(&ClusterParams {
        nodes,
        kosha: KoshaConfig {
            distribution_level: level,
            replicas,
            contributed_bytes: 1 << 28,
            ..KoshaConfig::for_tests()
        },
        latency: LatencyModel::zero(),
        seed: 777,
    })
}

#[test]
fn mab_runs_green_on_the_full_stack() {
    let c = cluster(4, 1, 1);
    let m = c.mount(0);
    let clock = c.clock();
    let times = run_mab(&MabParams::small(), &m, &clock).expect("MAB on kosha");
    assert!(times.total().as_nanos() > 0);
    // The tree is fully readable afterwards from a different node.
    let m2 = c.mount(3);
    let params = MabParams::small();
    for (path, size) in params.files() {
        let (_, attr) = m2.stat(&path).expect("file exists");
        assert_eq!(attr.size, size, "{path}");
    }
}

#[test]
fn trace_slice_round_trips_through_kosha() {
    let c = cluster(8, 2, 0);
    let m = c.mount(0);
    let trace = FsTrace::generate(&TraceParams::default().scaled(0.002));
    for d in &trace.dirs {
        m.mkdir_p(d).unwrap();
    }
    for f in &trace.files {
        m.create_sized(&f.path, f.size).unwrap();
    }
    // Spot-check existence and sizes from another node.
    let m2 = c.mount(5);
    for f in trace.files.iter().step_by(17) {
        let (_, attr) = m2.stat(&f.path).expect("trace file resolves");
        assert_eq!(attr.ftype, FileType::Regular);
        assert_eq!(attr.size, f.size);
    }
    // Bytes land on more than one machine.
    let stores_with_data = c
        .nodes
        .iter()
        .filter(|n| n.with_store(|v| v.used_bytes()) > 0)
        .count();
    assert!(stores_with_data >= 4, "only {stores_with_data} stores used");
}

#[test]
fn virtual_time_is_deterministic() {
    let run = || {
        let c = cluster(4, 1, 1);
        let m = c.mount(0);
        let clock = c.clock();
        clock.reset();
        m.mkdir_p("/det/a").unwrap();
        m.write_file("/det/a/f", &[9u8; 100_000]).unwrap();
        let _ = m.read_file("/det/a/f").unwrap();
        clock.now()
    };
    assert_eq!(run(), run(), "same workload, same virtual time");
}

#[test]
fn aggregate_capacity_reflects_all_nodes() {
    let c = cluster(6, 1, 0);
    let m = c.mount(0);
    let (cap, _, _) = m.fsstat().unwrap();
    // 6 nodes × 256 MiB contributed.
    assert_eq!(cap, 6 * (1 << 28));
}

#[test]
fn kosha_mount_is_shareable_across_user_sessions() {
    // Two mounts through the same koshad (two local processes).
    let c = cluster(3, 1, 0);
    let m1 = c.mount(0);
    let m2 = c.mount(0);
    m1.mkdir_p("/shared").unwrap();
    m1.write_file("/shared/note", b"from m1").unwrap();
    assert_eq!(m2.read_file("/shared/note").unwrap(), b"from m1");
    m2.remove("/shared/note").unwrap();
    assert!(!m1.exists("/shared/note"));
}
