//! Failure-injection scenarios beyond single-crash failover: cascades,
//! recovery, churn, and the data-loss boundary when failures exceed the
//! replica count.

use kosha::{KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_nfs::NfsError;
use kosha_rpc::{Network, NodeAddr, SimNetwork};
use std::sync::Arc;

struct Rig {
    net: Arc<SimNetwork>,
    nodes: Vec<Arc<KoshaNode>>,
}

fn rig(n: usize, replicas: usize) -> Rig {
    let net = SimNetwork::new_zero_latency();
    let cfg = KoshaConfig {
        distribution_level: 1,
        replicas,
        contributed_bytes: 1 << 26,
        ..KoshaConfig::for_tests()
    };
    let mut nodes = Vec::new();
    for i in 0..n {
        let id = node_id_from_seed(&format!("fail-host-{i}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(i as u64),
            net.clone() as Arc<dyn Network>,
        );
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
            .unwrap();
        nodes.push(node);
    }
    Rig { net, nodes }
}

impl Rig {
    fn mount(&self, i: usize) -> KoshaMount {
        KoshaMount::new(
            self.net.clone() as Arc<dyn Network>,
            self.nodes[i].addr(),
            self.nodes[i].addr(),
        )
        .unwrap()
    }

    fn holders_of(&self, path: &str) -> Vec<NodeAddr> {
        let mut out = Vec::new();
        for n in &self.nodes {
            let mut holds = false;
            n.with_store(|v| {
                v.walk(|p, _| {
                    if p.ends_with(path) {
                        holds = true;
                    }
                })
            });
            if holds {
                out.push(n.addr());
            }
        }
        out
    }
}

#[test]
fn sequential_cascading_failures_with_k2() {
    let r = rig(7, 2);
    let gw = 0usize;
    let m = r.mount(gw);
    m.mkdir_p("/cascade").unwrap();
    m.write_file("/cascade/data", b"keep me through the storm")
        .unwrap();

    // Kill up to two non-gateway holders one at a time; after each
    // failure the file must still be readable (K=2 tolerates 2 dead
    // copies before repair, and maintenance re-replicates in between).
    let mut killed = 0;
    for _round in 0..2 {
        let holders = r.holders_of("data");
        let victim = holders
            .into_iter()
            .find(|a| *a != r.nodes[gw].addr() && r.net.is_up(*a));
        let Some(victim) = victim else { break };
        r.net.fail_node(victim);
        killed += 1;
        assert_eq!(
            m.read_file("/cascade/data").unwrap(),
            b"keep me through the storm",
            "lost data after {killed} failures"
        );
        // Background maintenance (re-replication) between failures.
        for n in r.nodes.iter().filter(|n| r.net.is_up(n.addr())) {
            n.maintain();
        }
    }
    assert!(killed >= 1, "no failure was injected");
}

#[test]
fn data_unavailable_when_all_copies_die_then_returns_on_recovery() {
    let r = rig(5, 1);
    let m = r.mount(0);
    m.mkdir_p("/fragile").unwrap();
    m.write_file("/fragile/one", b"single replica").unwrap();

    let holders = r.holders_of("one");
    assert!(!holders.is_empty());
    // Kill every holder except our gateway (if the gateway holds a copy,
    // it keeps serving — that is correct behavior, so skip the test
    // body in that case).
    if holders.contains(&r.nodes[0].addr()) {
        return;
    }
    for h in &holders {
        r.net.fail_node(*h);
    }
    match m.read_file("/fragile/one") {
        Err(NfsError::Status(_)) | Err(NfsError::Rpc(_)) => {}
        Ok(_) => panic!("read succeeded with every copy dead"),
    }
    // Recovery brings the data back (disks persist across crashes).
    for h in &holders {
        r.net.recover_node(*h);
    }
    for n in &r.nodes {
        n.maintain();
    }
    assert_eq!(m.read_file("/fragile/one").unwrap(), b"single replica");
}

#[test]
fn churn_nodes_joining_while_operating() {
    let r = rig(3, 1);
    let m = r.mount(0);
    for i in 0..6 {
        m.mkdir_p(&format!("/churn{i}")).unwrap();
        m.write_file(&format!("/churn{i}/f"), &[i as u8; 512])
            .unwrap();
    }
    // Five newcomers join while the client keeps writing.
    let cfg = KoshaConfig {
        distribution_level: 1,
        replicas: 1,
        contributed_bytes: 1 << 26,
        ..KoshaConfig::for_tests()
    };
    for j in 0..5u64 {
        let id = node_id_from_seed(&format!("late-{j}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(100 + j),
            r.net.clone() as Arc<dyn Network>,
        );
        r.net.attach(node.addr(), mux);
        node.join(Some(NodeAddr(0))).unwrap();
        // Interleaved writes during churn.
        m.write_file(&format!("/churn{j}/during"), b"written during join")
            .unwrap();
    }
    for i in 0..6 {
        assert_eq!(
            m.read_file(&format!("/churn{i}/f")).unwrap(),
            vec![i as u8; 512]
        );
    }
    for j in 0..5 {
        assert_eq!(
            m.read_file(&format!("/churn{j}/during")).unwrap(),
            b"written during join"
        );
    }
}

#[test]
fn purged_node_loses_data_but_cluster_recovers_from_replicas() {
    let r = rig(6, 2);
    let m = r.mount(0);
    m.mkdir_p("/purge").unwrap();
    m.write_file("/purge/f", b"replicated before purge")
        .unwrap();

    // Reincarnate the primary: purge its disk entirely (§4.3: "all Kosha
    // data on a revived node is purged").
    let primary = r
        .nodes
        .iter()
        .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/purge"))
        .unwrap();
    if primary.addr() == r.nodes[0].addr() {
        return; // gateway purge would also wipe the client's own state
    }
    primary.purge();
    // The next access finds the store empty, fails over to a replica
    // holder via the overlay, and the data survives.
    assert_eq!(m.read_file("/purge/f").unwrap(), b"replicated before purge");
}

#[test]
fn reincarnation_with_a_new_identity() {
    // §4.3: "a node can be revived with a different identifier which
    // places it in a different location in the p2p node identifier
    // space, [so] all Kosha data on a revived node is purged."
    let r = rig(6, 2);
    let m = r.mount(0);
    m.mkdir_p("/perm").unwrap();
    m.write_file("/perm/data", b"must survive reincarnation")
        .unwrap();

    // Pick a non-gateway machine and reincarnate it: crash, purge its
    // disk, replace its daemon with one under a brand-new identifier.
    let victim_idx = 1usize;
    let victim_addr = r.nodes[victim_idx].addr();
    r.net.fail_node(victim_addr);
    // The survivors notice and repair.
    for n in r.nodes.iter().filter(|n| n.addr() != victim_addr) {
        n.maintain();
    }
    assert_eq!(
        m.read_file("/perm/data").unwrap(),
        b"must survive reincarnation"
    );

    // Reincarnate: new node, same address, different id, empty disk.
    let cfg = KoshaConfig {
        distribution_level: 1,
        replicas: 2,
        contributed_bytes: 1 << 26,
        ..KoshaConfig::for_tests()
    };
    let new_id = node_id_from_seed("reincarnated-host");
    assert_ne!(new_id, r.nodes[victim_idx].id());
    let (reborn, mux) =
        KoshaNode::build(cfg, new_id, victim_addr, r.net.clone() as Arc<dyn Network>);
    r.net.attach(victim_addr, mux); // replaces the old registration
    reborn.join(Some(r.nodes[0].addr())).unwrap();
    for n in r.nodes.iter().filter(|n| n.addr() != victim_addr) {
        n.maintain();
    }

    // Data still readable; the reborn node participates (may have
    // received migrated anchors for its new key-space position).
    assert_eq!(
        m.read_file("/perm/data").unwrap(),
        b"must survive reincarnation"
    );
    // New writes work and can land anywhere, including the reborn node.
    m.mkdir_p("/afterlife").unwrap();
    m.write_file("/afterlife/f", b"fresh").unwrap();
    assert_eq!(m.read_file("/afterlife/f").unwrap(), b"fresh");
}

#[test]
fn writes_during_failover_reach_the_new_primary_and_replicas() {
    let r = rig(6, 2);
    let m = r.mount(0);
    m.mkdir_p("/wf").unwrap();
    m.write_file("/wf/doc", b"v1").unwrap();
    let primary = r
        .nodes
        .iter()
        .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/wf"))
        .unwrap();
    if primary.addr() == r.nodes[0].addr() {
        return;
    }
    r.net.fail_node(primary.addr());
    m.write_file("/wf/doc", b"v2-after-failover").unwrap();

    // The promoted primary must hold v2 and have re-replicated it.
    let new_primary = r
        .nodes
        .iter()
        .filter(|n| n.addr() != primary.addr())
        .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/wf"))
        .expect("promotion happened");
    let mut found = false;
    new_primary.with_store(|v| {
        v.walk(|p, attr| {
            if p.starts_with("/kosha_store") && p.ends_with("doc") {
                found = attr.size == b"v2-after-failover".len() as u64;
            }
        })
    });
    assert!(found, "new primary lacks the post-failover write");
    assert_eq!(m.read_file("/wf/doc").unwrap(), b"v2-after-failover");
}
