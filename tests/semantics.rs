//! Differential semantics testing: the paper claims "the semantics of
//! Kosha are the same as NFS in the absence of failures" (§4.1.1). These
//! tests run identical operation sequences against a plain central NFS
//! server and against a Kosha cluster, and require identical observable
//! outcomes (results, errors, listings, attributes).

use kosha::KoshaConfig;
use kosha_nfs::{DiskModel, NfsError, NfsStatus};
use kosha_rpc::LatencyModel;
use kosha_sim::baseline::NfsBaseline;
use kosha_sim::cluster::{ClusterParams, SimCluster};
use kosha_sim::workbench::Workbench;
use kosha_vfs::FileType;
use proptest::prelude::*;

fn kosha_cluster() -> SimCluster {
    SimCluster::build(&ClusterParams {
        nodes: 5,
        kosha: KoshaConfig {
            distribution_level: 2,
            replicas: 1,
            contributed_bytes: 1 << 26,
            ..KoshaConfig::for_tests()
        },
        latency: LatencyModel::zero(),
        seed: 999,
    })
}

/// Normalizes an outcome for comparison: success payload or the status.
fn norm<T: PartialEq + std::fmt::Debug>(r: Result<T, NfsError>) -> Result<T, Option<NfsStatus>> {
    r.map_err(|e| match e {
        NfsError::Status(s) => Some(s),
        NfsError::Rpc(_) => None,
    })
}

#[test]
fn identical_results_for_a_scripted_session() {
    let nfs = NfsBaseline::build(LatencyModel::zero(), DiskModel::zero(), 1 << 26);
    let cluster = kosha_cluster();
    let kosha = cluster.mount(0);

    // A session mixing successes and expected failures.
    type Step = fn(&dyn Workbench) -> Result<String, NfsError>;
    let steps: Vec<Step> = vec![
        |fs| fs.mkdir_p("/proj/src").map(|_| "ok".into()),
        |fs| {
            fs.write_file("/proj/src/a.rs", b"fn a() {}")
                .map(|_| "ok".into())
        },
        |fs| {
            fs.write_file("/proj/src/b.rs", b"fn b() {}")
                .map(|_| "ok".into())
        },
        |fs| fs.read_file("/proj/src/a.rs").map(|d| format!("{d:?}")),
        |fs| fs.read_file("/proj/missing").map(|d| format!("{d:?}")),
        |fs| {
            fs.stat("/proj/src/b.rs")
                .map(|a| format!("{}:{:?}", a.size, a.ftype))
        },
        |fs| fs.stat("/proj").map(|a| format!("{:?}", a.ftype)),
        |fs| {
            fs.readdir("/proj/src").map(|v| {
                v.iter()
                    .map(|(n, _)| n.clone())
                    .collect::<Vec<_>>()
                    .join(",")
            })
        },
        |fs| fs.read_file("/proj").map(|d| format!("{d:?}")), // IsDir
        |fs| fs.mkdir_p("/proj/src/a.rs/x").map(|_| "ok".into()), // NotDir
        |fs| {
            fs.write_file("/proj/src/a.rs", b"fn a2() {}")
                .map(|_| "ok".into())
        },
        |fs| fs.read_file("/proj/src/a.rs").map(|d| format!("{d:?}")),
    ];

    for (i, step) in steps.iter().enumerate() {
        let expect = norm(step(&nfs));
        let got = norm(step(&kosha));
        assert_eq!(got, expect, "step {i} diverged");
    }
}

#[derive(Debug, Clone)]
enum Op {
    MkdirP(u8, u8),
    Write(u8, u8, u16),
    Read(u8, u8),
    Stat(u8, u8),
    List(u8),
    Remove(u8, u8),
    RmdirSub(u8, u8),
    /// Same-directory rename (cross-node directory moves are NotSupp in
    /// Kosha — the expensive traversal the paper declines to evaluate —
    /// so the differential workload stays within one parent).
    RenameFile(u8, u8, u8),
}

fn dir_name(sel: u8) -> String {
    format!("/zone{}", sel % 4)
}

fn file_path(d: u8, f: u8) -> String {
    format!("{}/file{}", dir_name(d), f % 5)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(d, s)| Op::MkdirP(d, s)),
        (any::<u8>(), any::<u8>(), 1u16..2000).prop_map(|(d, f, n)| Op::Write(d, f, n)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, f)| Op::Read(d, f)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, f)| Op::Stat(d, f)),
        any::<u8>().prop_map(Op::List),
        (any::<u8>(), any::<u8>()).prop_map(|(d, f)| Op::Remove(d, f)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, s)| Op::RmdirSub(d, s)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(d, f, t)| Op::RenameFile(d, f, t)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random sessions behave identically on NFS and on Kosha.
    #[test]
    fn random_sessions_agree(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let nfs = NfsBaseline::build(LatencyModel::zero(), DiskModel::zero(), 1 << 26);
        let cluster = kosha_cluster();
        let kosha = cluster.mount(0);

        for (i, op) in ops.iter().enumerate() {
            let (a, b): (Result<String, _>, Result<String, _>) = match op {
                Op::MkdirP(d, s) => {
                    let p = format!("{}/sub{}", dir_name(*d), s % 3);
                    (
                        norm(nfs.mkdir_p(&p).map(|_| "ok".to_string())),
                        norm(Workbench::mkdir_p(&kosha, &p).map(|_| "ok".to_string())),
                    )
                }
                Op::Write(d, f, n) => {
                    let p = file_path(*d, *f);
                    let data = vec![(*f).wrapping_add(1); *n as usize];
                    (
                        norm(nfs.write_file(&p, &data).map(|_| "ok".to_string())),
                        norm(Workbench::write_file(&kosha, &p, &data).map(|_| "ok".to_string())),
                    )
                }
                Op::Read(d, f) => {
                    let p = file_path(*d, *f);
                    (
                        norm(nfs.read_file(&p).map(|v| format!("{}:{:x?}", v.len(), v.first()))),
                        norm(Workbench::read_file(&kosha, &p).map(|v| format!("{}:{:x?}", v.len(), v.first()))),
                    )
                }
                Op::Stat(d, f) => {
                    let p = file_path(*d, *f);
                    (
                        norm(nfs.stat(&p).map(|a| format!("{}:{:?}", a.size, a.ftype))),
                        norm(Workbench::stat(&kosha, &p).map(|a| format!("{}:{:?}", a.size, a.ftype))),
                    )
                }
                Op::List(d) => {
                    let p = dir_name(*d);
                    let fmt = |v: Vec<(String, FileType)>| {
                        v.into_iter()
                            .map(|(n, t)| format!("{n}:{t:?}"))
                            .collect::<Vec<_>>()
                            .join(",")
                    };
                    (
                        norm(nfs.readdir(&p).map(fmt)),
                        norm(Workbench::readdir(&kosha, &p).map(fmt)),
                    )
                }
                Op::Remove(d, f) => {
                    let p = file_path(*d, *f);
                    (
                        norm(Workbench::remove(&nfs, &p).map(|_| "ok".to_string())),
                        norm(Workbench::remove(&kosha, &p).map(|_| "ok".to_string())),
                    )
                }
                Op::RmdirSub(d, s) => {
                    let p = format!("{}/sub{}", dir_name(*d), s % 3);
                    (
                        norm(Workbench::rmdir(&nfs, &p).map(|_| "ok".to_string())),
                        norm(Workbench::rmdir(&kosha, &p).map(|_| "ok".to_string())),
                    )
                }
                Op::RenameFile(d, f, t) => {
                    let from = file_path(*d, *f);
                    let to = format!("{}/renamed{}", dir_name(*d), t % 3);
                    (
                        norm(Workbench::rename(&nfs, &from, &to).map(|_| "ok".to_string())),
                        norm(Workbench::rename(&kosha, &from, &to).map(|_| "ok".to_string())),
                    )
                }
            };
            prop_assert_eq!(b, a, "op {} ({:?}) diverged", i, op);
        }
    }
}
