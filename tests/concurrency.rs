//! Real-thread concurrency tests: the same Kosha stack on the
//! [`ThreadedNetwork`] transport, with multiple client threads mutating
//! the namespace at once. Shakes out locking mistakes a deterministic
//! single-threaded simulation cannot.

use kosha::{KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_rpc::{Network, NodeAddr, ThreadedNetwork};
use std::sync::Arc;
use std::time::Duration;

fn threaded_cluster(n: usize) -> (Arc<ThreadedNetwork>, Vec<Arc<KoshaNode>>) {
    let net = ThreadedNetwork::new(Duration::from_secs(10));
    let cfg = KoshaConfig {
        distribution_level: 1,
        replicas: 1,
        contributed_bytes: 1 << 26,
        ..KoshaConfig::for_tests()
    };
    let mut nodes = Vec::new();
    for i in 0..n {
        let id = node_id_from_seed(&format!("threaded-{i}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(i as u64),
            net.clone() as Arc<dyn Network>,
        );
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
            .expect("join");
        nodes.push(node);
    }
    (net, nodes)
}

#[test]
fn concurrent_writers_in_disjoint_directories() {
    let (net, nodes) = threaded_cluster(4);
    let mut handles = Vec::new();
    for (w, node) in nodes.iter().enumerate() {
        let net = net.clone();
        let addr = node.addr();
        handles.push(std::thread::spawn(move || {
            let m = KoshaMount::new(net as Arc<dyn Network>, addr, addr).expect("mount");
            let dir = format!("/writer{w}");
            m.mkdir_p(&dir).expect("mkdir");
            for i in 0..25 {
                m.write_file(&format!("{dir}/f{i}"), format!("w{w}-i{i}").as_bytes())
                    .expect("write");
            }
        }));
    }
    for h in handles {
        h.join().expect("writer thread");
    }
    // Everything visible from a single fresh mount.
    let m = KoshaMount::new(net.clone() as Arc<dyn Network>, NodeAddr(0), NodeAddr(0)).unwrap();
    for w in 0..4 {
        for i in 0..25 {
            assert_eq!(
                m.read_file(&format!("/writer{w}/f{i}")).unwrap(),
                format!("w{w}-i{i}").as_bytes()
            );
        }
        assert_eq!(m.readdir(&format!("/writer{w}")).unwrap().len(), 25);
    }
}

#[test]
fn concurrent_writers_in_one_directory() {
    let (net, nodes) = threaded_cluster(3);
    let m0 = KoshaMount::new(net.clone() as Arc<dyn Network>, NodeAddr(0), NodeAddr(0)).unwrap();
    m0.mkdir_p("/shared").unwrap();
    let mut handles = Vec::new();
    for (w, node) in nodes.iter().enumerate() {
        let net = net.clone();
        let addr = node.addr();
        handles.push(std::thread::spawn(move || {
            let m = KoshaMount::new(net as Arc<dyn Network>, addr, addr).expect("mount");
            for i in 0..20 {
                m.write_file(&format!("/shared/w{w}-f{i}"), &[w as u8; 64])
                    .expect("write");
            }
        }));
    }
    for h in handles {
        h.join().expect("writer thread");
    }
    assert_eq!(m0.readdir("/shared").unwrap().len(), 60);
}

#[test]
fn readers_and_writers_interleave_safely() {
    let (net, _nodes) = threaded_cluster(3);
    let m0 = KoshaMount::new(net.clone() as Arc<dyn Network>, NodeAddr(0), NodeAddr(0)).unwrap();
    m0.mkdir_p("/hot").unwrap();
    m0.write_file("/hot/counter", b"0").unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    // One writer continuously replaces content.
    {
        let net = net.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let m = KoshaMount::new(net as Arc<dyn Network>, NodeAddr(1), NodeAddr(1)).unwrap();
            let mut i = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                i += 1;
                m.write_file("/hot/counter", format!("{i}").as_bytes())
                    .expect("write");
            }
        }));
    }
    // Two readers observe some valid state each time.
    for r in 0..2u64 {
        let net = net.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let m = KoshaMount::new(net as Arc<dyn Network>, NodeAddr(2), NodeAddr(2)).unwrap();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let data = m.read_file("/hot/counter").expect("read");
                let text = String::from_utf8(data).expect("utf8 content");
                // NFS offers no atomic whole-file replace: a reader may
                // observe the truncation point (empty) or a valid value,
                // but never garbage.
                assert!(
                    text.is_empty() || text.parse::<u32>().is_ok(),
                    "torn read: {text:?} (r{r})"
                );
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        h.join().expect("thread");
    }
}

#[test]
fn failover_works_on_the_threaded_transport() {
    let (net, nodes) = threaded_cluster(5);
    let m = KoshaMount::new(net.clone() as Arc<dyn Network>, NodeAddr(0), NodeAddr(0)).unwrap();
    m.mkdir_p("/ha").unwrap();
    m.write_file("/ha/data", b"survives").unwrap();
    // Kill the primary if it is not our gateway.
    let primary = nodes
        .iter()
        .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/ha"))
        .expect("hosted");
    if primary.addr() != NodeAddr(0) {
        net.fail_node(primary.addr());
        assert_eq!(m.read_file("/ha/data").unwrap(), b"survives");
    }
}
