//! Umbrella crate for the Kosha reproduction.
//!
//! Re-exports the workspace crates so the repository-level examples and
//! integration tests have one import surface. The actual system lives in
//! the member crates:
//!
//! * [`kosha`] — the paper's contribution: the koshad daemon.
//! * [`kosha_pastry`] — the Pastry DHT substrate.
//! * [`kosha_nfs`] — the NFSv3-like protocol, server, and client.
//! * [`kosha_vfs`] — per-node contributed storage.
//! * [`kosha_rpc`] — transports (deterministic simulation + threads).
//! * [`kosha_id`] — 128-bit identifier space and SHA-1.
//! * [`kosha_sim`] — experiment testbed regenerating every table/figure.

pub use kosha;
pub use kosha_id;
pub use kosha_nfs;
pub use kosha_pastry;
pub use kosha_rpc;
pub use kosha_sim;
pub use kosha_vfs;
