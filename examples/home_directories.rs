//! The paper's motivating deployment: an academic lab moves its users'
//! home directories onto Kosha, harvesting unused desktop disk space
//! (Sections 1–2). This example populates many user homes, then shows
//! how directory-level distribution balances files and bytes across the
//! machines — the live-system analogue of Figure 5.
//!
//! Run with: `cargo run --release --example home_directories`

use kosha::{KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_rpc::{LatencyModel, Network, NodeAddr, SimNetwork};
use kosha_sim::{FsTrace, TraceParams};
use std::sync::Arc;

fn main() {
    let nodes_count = 16u64;
    let net = SimNetwork::new(LatencyModel::zero());
    let cfg = KoshaConfig {
        distribution_level: 2,
        replicas: 0,
        contributed_bytes: 4 << 30,
        ..KoshaConfig::for_tests()
    };
    let mut nodes = Vec::new();
    for i in 0..nodes_count {
        let id = node_id_from_seed(&format!("lab-pc-{i}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(i),
            net.clone() as Arc<dyn Network>,
        );
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
            .unwrap();
        nodes.push(node);
    }

    // A small synthetic slice of the departmental trace: a few thousand
    // files across user homes, inserted as sparse (size-only) files.
    let trace = FsTrace::generate(&TraceParams::default().scaled(0.008));
    let mount = KoshaMount::new(net.clone() as Arc<dyn Network>, NodeAddr(0), NodeAddr(0)).unwrap();
    for d in &trace.dirs {
        mount.mkdir_p(d).unwrap();
    }
    let mut inserted = 0u64;
    for f in &trace.files {
        if mount.create_sized(&f.path, f.size).is_ok() {
            inserted += 1;
        }
    }
    println!(
        "placed {} files ({:.2} GB) from {} users across {} machines\n",
        inserted,
        trace.total_bytes() as f64 / 1e9,
        TraceParams::default().scaled(0.008).users,
        nodes_count
    );

    // Per-node load report (primary bytes in each node's store).
    println!(
        "{:<10} {:>12} {:>12} {:>8}",
        "machine", "objects", "bytes", "share%"
    );
    let mut totals = Vec::new();
    for node in &nodes {
        let mut bytes = 0u64;
        let mut objects = 0u64;
        node.with_store(|v| {
            v.walk(|p, attr| {
                if p.starts_with("/kosha_store") && attr.ftype == kosha_vfs::FileType::Regular {
                    bytes += attr.size;
                    objects += 1;
                }
            })
        });
        totals.push((node.addr(), objects, bytes));
    }
    let total_bytes: u64 = totals.iter().map(|(_, _, b)| b).sum();
    for (addr, objects, bytes) in &totals {
        println!(
            "{:<10} {:>12} {:>12} {:>7.2}%",
            addr.to_string(),
            objects,
            bytes,
            100.0 * *bytes as f64 / total_bytes.max(1) as f64
        );
    }
    let mean = total_bytes as f64 / totals.len() as f64;
    let std = (totals
        .iter()
        .map(|(_, _, b)| (*b as f64 - mean) * (*b as f64 - mean))
        .sum::<f64>()
        / totals.len() as f64)
        .sqrt();
    println!(
        "\nbyte share: mean {:.2}%, std {:.2}% of total — directory-level hashing\n\
         spreads whole homes, so a node holds entire subtrees, not single files",
        100.0 / totals.len() as f64,
        100.0 * std / total_bytes.max(1) as f64
    );
}
