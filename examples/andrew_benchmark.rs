//! Runs the Modified Andrew Benchmark against both unmodified NFS and an
//! 8-node Kosha cluster, printing the paper-style phase comparison of
//! Table 1 for a single configuration.
//!
//! Run with: `cargo run --release --example andrew_benchmark`

use kosha_sim::baseline::NfsBaseline;
use kosha_sim::cluster::{ClusterParams, SimCluster};
use kosha_sim::experiments::{mab_disk, mab_lan, table1_kosha_config};
use kosha_sim::mab::{run_mab, MabParams};

fn main() {
    let params = MabParams::default();
    println!(
        "MAB workload: {} files, {} MB, {} dirs (depth {})\n",
        params.files,
        params.total_bytes / (1024 * 1024),
        params.dirs().len(),
        params.depth
    );

    let nfs = {
        let b = NfsBaseline::build(mab_lan(), mab_disk(), 64 << 30);
        let clock = b.clock();
        run_mab(&params, &b, &clock).expect("baseline")
    };
    let kosha = {
        let cluster = SimCluster::build(&ClusterParams {
            nodes: 8,
            kosha: table1_kosha_config(),
            latency: mab_lan(),
            seed: 108,
        });
        let m = cluster.mount(0);
        let clock = cluster.clock();
        clock.reset();
        run_mab(&params, &m, &clock).expect("kosha")
    };

    println!(
        "{:<10} {:>10} {:>12} {:>9}",
        "phase", "NFS (s)", "Kosha-8 (s)", "ovhd %"
    );
    let rows = [
        ("mkdir", nfs.mkdir, kosha.mkdir),
        ("copy", nfs.copy, kosha.copy),
        ("stat", nfs.stat, kosha.stat),
        ("grep", nfs.grep, kosha.grep),
        ("compile", nfs.compile, kosha.compile),
        ("Total", nfs.total(), kosha.total()),
    ];
    for (name, base, k) in rows {
        println!(
            "{:<10} {:>10.2} {:>12.2} {:>8.2}%",
            name,
            base.as_secs_f64(),
            k.as_secs_f64(),
            (k.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
        );
    }
    println!("\nPaper: total overhead of 5.6% over eight nodes.");
}
