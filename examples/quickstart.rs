//! Quickstart: boot a simulated 8-node Kosha deployment, mount `/kosha`,
//! and use it like a normal file system.
//!
//! Run with: `cargo run --example quickstart`

use kosha::{KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_rpc::{LatencyModel, Network, NodeAddr, SimNetwork};
use std::sync::Arc;

fn main() {
    // 1. A simulated 100 Mb/s LAN.
    let net = SimNetwork::new(LatencyModel::default());

    // 2. Eight desktop machines, each contributing 2 GB of unused disk
    //    space, joining the overlay one at a time.
    let cfg = KoshaConfig {
        distribution_level: 1,
        replicas: 1,
        contributed_bytes: 2 << 30,
        ..KoshaConfig::default()
    };
    let mut nodes = Vec::new();
    for i in 0..8u64 {
        let id = node_id_from_seed(&format!("desktop-{i}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(i),
            net.clone() as Arc<dyn Network>,
        );
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
            .expect("join overlay");
        nodes.push(node);
    }
    println!("booted {} nodes; aggregate pool ready", nodes.len());

    // 3. Mount /kosha through the local koshad (node 0) and use it.
    let mount = KoshaMount::new(net.clone() as Arc<dyn Network>, NodeAddr(0), NodeAddr(0))
        .expect("mount /kosha");
    mount.mkdir_p("/alice/projects/kosha").unwrap();
    mount
        .write_file(
            "/alice/projects/kosha/README.md",
            b"Files live somewhere in the cluster; you never need to know where.",
        )
        .unwrap();

    // 4. Location transparency: a mount on a different machine sees the
    //    same file, served from wherever the DHT placed it.
    let other = KoshaMount::new(net.clone() as Arc<dyn Network>, NodeAddr(5), NodeAddr(5))
        .expect("mount via node 5");
    let content = other.read_file("/alice/projects/kosha/README.md").unwrap();
    println!("read from node 5: {}", String::from_utf8_lossy(&content));

    // 5. Where did the directory actually land?
    for node in &nodes {
        for (path, routing) in node.hosted_anchors() {
            if path != "/" {
                println!(
                    "  anchor {path:<24} (key '{routing}') lives on {}",
                    node.addr()
                );
            }
        }
    }

    // 6. Aggregate view of the pool.
    let (cap, used, free) = mount.fsstat().unwrap();
    println!(
        "pool: {:.1} GB capacity, {} bytes used, {:.1} GB free",
        cap as f64 / 1e9,
        used,
        free as f64 / 1e9
    );
}
