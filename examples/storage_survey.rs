//! The Section 2.1 motivation, recreated: a synthetic inventory of lab
//! desktops shows how much disk space sits unused, and how much shared
//! storage Kosha could harvest from it — versus the strained central
//! NFS servers.
//!
//! Run with: `cargo run --example storage_survey`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Machine {
    disk_gb: f64,
    used_gb: f64,
}

fn main() {
    // Paper survey: 500+ instructional machines; >84% have 40 GB disks,
    // local utilization under 4 GB (OS + temp files); older machines
    // have 8–20 GB.
    let mut rng = StdRng::seed_from_u64(2004);
    let machines: Vec<Machine> = (0..512)
        .map(|_| {
            let class: f64 = rng.random();
            let disk_gb = if class < 0.84 {
                40.0
            } else if class < 0.95 {
                8.0 + rng.random::<f64>() * 12.0
            } else {
                60.0
            };
            let used_gb = 2.0 + rng.random::<f64>() * 2.0;
            Machine { disk_gb, used_gb }
        })
        .collect();

    let total_disk: f64 = machines.iter().map(|m| m.disk_gb).sum();
    let total_used: f64 = machines.iter().map(|m| m.used_gb).sum();
    let unused = total_disk - total_used;
    let forty_plus = machines.iter().filter(|m| m.disk_gb >= 40.0).count();
    let wasted_on_40s: f64 = machines
        .iter()
        .filter(|m| m.disk_gb >= 40.0)
        .map(|m| (m.disk_gb - m.used_gb) / m.disk_gb)
        .sum::<f64>()
        / forty_plus as f64;

    println!(
        "Synthetic survey of {} instructional machines",
        machines.len()
    );
    println!("  total disk:          {total_disk:9.0} GB");
    println!("  locally used:        {total_used:9.0} GB");
    println!("  unused (harvestable):{unused:9.0} GB");
    println!(
        "  machines with >=40GB: {} ({:.0}%), of which {:.0}% of space is unused",
        forty_plus,
        100.0 * forty_plus as f64 / machines.len() as f64,
        100.0 * wasted_on_40s
    );

    // The central servers of the paper: ~75% full, quota-bound.
    let central_capacity_gb = 3.0 * 500.0; // three servers
    let central_used = central_capacity_gb * 0.75;
    println!("\nCentral NFS servers: {central_capacity_gb:.0} GB, {central_used:.0} GB used (75%)");
    println!(
        "Kosha would multiply shared storage by {:.0}x without buying a disk.",
        unused / (central_capacity_gb - central_used)
    );
}
