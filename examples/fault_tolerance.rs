//! Fault tolerance walkthrough: replication, transparent failover, and
//! migration (Sections 4.2–4.4 of the paper).
//!
//! Run with: `cargo run --example fault_tolerance`

use kosha::{KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_rpc::{LatencyModel, Network, NodeAddr, SimNetwork};
use std::sync::Arc;

fn main() {
    let net = SimNetwork::new(LatencyModel::zero());
    let cfg = KoshaConfig {
        distribution_level: 1,
        replicas: 2, // K = 2 additional replicas per file
        contributed_bytes: 1 << 30,
        ..KoshaConfig::for_tests()
    };
    let mut nodes = Vec::new();
    for i in 0..6u64 {
        let id = node_id_from_seed(&format!("ft-host-{i}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(i),
            net.clone() as Arc<dyn Network>,
        );
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
            .unwrap();
        nodes.push(node);
    }

    let mount = KoshaMount::new(net.clone() as Arc<dyn Network>, NodeAddr(0), NodeAddr(0)).unwrap();
    mount.mkdir_p("/thesis").unwrap();
    mount
        .write_file("/thesis/chapter1.tex", b"\\section{Introduction} ...")
        .unwrap();

    // Who is the primary, and who holds replicas?
    let primary = nodes
        .iter()
        .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/thesis"))
        .expect("someone hosts /thesis");
    println!("primary replica of /thesis: node {}", primary.addr());
    for node in &nodes {
        let mut has_replica = false;
        node.with_store(|v| {
            v.walk(|p, _| {
                if p.starts_with("/kosha_replica") && p.ends_with("chapter1.tex") {
                    has_replica = true;
                }
            })
        });
        if has_replica {
            println!("replica held by:            node {}", node.addr());
        }
    }

    // Crash the primary. The paper's §4.4: the client's next access hits
    // an RPC error, drops the virtual-handle mapping, re-routes the key —
    // which lands on a leaf-set neighbor holding a replica — and promotes
    // it. All invisible to the application.
    let victim = primary.addr();
    println!("\ncrashing node {victim} ...");
    net.fail_node(victim);

    // Read through a surviving machine's koshad.
    let gateway = nodes
        .iter()
        .map(|n| n.addr())
        .find(|a| *a != victim)
        .expect("a survivor exists");
    let reader = KoshaMount::new(net.clone() as Arc<dyn Network>, gateway, gateway).unwrap();
    let content = reader.read_file("/thesis/chapter1.tex").unwrap();
    println!(
        "read after crash still works: {:?}",
        String::from_utf8_lossy(&content)
    );
    reader
        .write_file("/thesis/chapter1.tex", b"\\section{Introduction} v2")
        .unwrap();
    println!("write after crash works too (new primary promoted)");

    let new_primary = nodes
        .iter()
        .filter(|n| n.addr() != victim)
        .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/thesis"))
        .expect("a replica was promoted");
    println!("new primary: node {}", new_primary.addr());

    // The crashed machine comes back — its key-space ownership returns
    // and the fresher data migrates back to it.
    println!("\nrecovering node {victim} ...");
    net.recover_node(victim);
    for n in &nodes {
        n.maintain();
    }
    let back = reader.read_file("/thesis/chapter1.tex").unwrap();
    println!(
        "after recovery and maintenance, content is the post-crash version: {:?}",
        String::from_utf8_lossy(&back)
    );
}
